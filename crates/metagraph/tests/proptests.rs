//! Property-based tests of the metagraph structure theory: canonical
//! codes, automorphisms, decomposition, and MCS.

use mgp_graph::TypeId;
use mgp_metagraph::{
    mcs_size, structural_similarity, Automorphisms, CanonicalCode, Decomposition, Metagraph,
    SymmetryInfo,
};
use proptest::prelude::*;

/// Strategy: a random simple pattern with `n ∈ [1, 6]` nodes, up to 3
/// types, and a random edge subset.
fn arb_pattern() -> impl Strategy<Value = Metagraph> {
    (1usize..=6).prop_flat_map(|n| {
        let types = prop::collection::vec(0u16..3, n);
        let max_edges = n * (n.saturating_sub(1)) / 2;
        let edges = prop::collection::vec(any::<bool>(), max_edges);
        (types, edges).prop_map(move |(tys, edge_bits)| {
            let types: Vec<TypeId> = tys.into_iter().map(TypeId).collect();
            let mut m = Metagraph::new(&types).unwrap();
            let mut bit = 0;
            for u in 0..types.len() {
                for v in (u + 1)..types.len() {
                    if edge_bits[bit] {
                        m.add_edge(u, v).unwrap();
                    }
                    bit += 1;
                }
            }
            m
        })
    })
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(128))]

    #[test]
    fn canonical_code_is_relabelling_invariant(m in arb_pattern(), seed in any::<u64>()) {
        let n = m.n_nodes();
        // Derive a permutation from the seed deterministically.
        let mut perm: Vec<usize> = (0..n).collect();
        let mut state = seed | 1;
        for i in (1..n).rev() {
            state ^= state << 13;
            state ^= state >> 7;
            state ^= state << 17;
            perm.swap(i, (state % (i as u64 + 1)) as usize);
        }
        let shuffled = m.permuted(&perm);
        prop_assert_eq!(CanonicalCode::of(&m), CanonicalCode::of(&shuffled));
    }

    #[test]
    fn canonical_roundtrip_is_isomorphic(m in arb_pattern()) {
        let code = CanonicalCode::of(&m);
        let rebuilt = code.to_metagraph();
        prop_assert_eq!(rebuilt.n_nodes(), m.n_nodes());
        prop_assert_eq!(rebuilt.n_edges(), m.n_edges());
        prop_assert_eq!(CanonicalCode::of(&rebuilt), code);
    }

    #[test]
    fn automorphism_group_properties(m in arb_pattern()) {
        let auts = Automorphisms::compute(&m);
        prop_assert!(auts.count() >= 1);
        // Every permutation is a genuine automorphism.
        for perm in auts.iter() {
            for u in 0..m.n_nodes() {
                prop_assert_eq!(m.node_type(perm[u] as usize), m.node_type(u));
                for v in 0..m.n_nodes() {
                    if u != v {
                        prop_assert_eq!(
                            m.has_edge(perm[u] as usize, perm[v] as usize),
                            m.has_edge(u, v)
                        );
                    }
                }
            }
        }
        // Group order divides n! (Lagrange, trivially) and symmetric
        // relation is symmetric.
        let info = SymmetryInfo::from_automorphisms(&m, &auts);
        for u in 0..m.n_nodes() {
            for v in 0..m.n_nodes() {
                prop_assert_eq!(info.are_symmetric(u, v), info.are_symmetric(v, u));
                if info.are_symmetric(u, v) {
                    prop_assert_eq!(info.orbit_of(u), info.orbit_of(v));
                    prop_assert_eq!(m.node_type(u), m.node_type(v));
                }
            }
        }
    }

    #[test]
    fn decomposition_partitions_nodes(m in arb_pattern()) {
        let d = Decomposition::compute(&m);
        prop_assert_eq!(d.n_nodes_covered(), m.n_nodes());
        let mut mask = 0u16;
        for b in &d.blocks {
            prop_assert_eq!(mask & b.mask(), 0, "blocks overlap");
            mask |= b.mask();
            // Components inside a block are same-sized, type-aligned and
            // disjoint.
            let rep = &b.components[0];
            let mut seen = 0u16;
            for c in &b.components {
                prop_assert_eq!(c.len(), rep.len());
                prop_assert_eq!(seen & c.mask, 0);
                seen |= c.mask;
                for (i, &u) in c.nodes.iter().enumerate() {
                    prop_assert_eq!(
                        m.node_type(u as usize),
                        m.node_type(rep.nodes[i] as usize)
                    );
                }
            }
        }
        prop_assert_eq!(mask.count_ones() as usize, m.n_nodes());
        // |Aut| = r · ∏ |B|!
        let h: usize = d
            .blocks
            .iter()
            .map(|b| (1..=b.width()).product::<usize>())
            .product();
        prop_assert_eq!(d.aut_count, d.residual_factor * h);
    }

    #[test]
    fn mcs_bounds_and_symmetry(a in arb_pattern(), b in arb_pattern()) {
        let s = mcs_size(&a, &b);
        prop_assert_eq!(s, mcs_size(&b, &a));
        prop_assert!(s <= a.size().min(b.size()));
        prop_assert_eq!(mcs_size(&a, &a), a.size());
        let ss = structural_similarity(&a, &b);
        prop_assert!((0.0..=1.0 + 1e-12).contains(&ss));
        let ss_aa = structural_similarity(&a, &a);
        prop_assert!((ss_aa - 1.0).abs() < 1e-12);
    }

    #[test]
    fn isomorphic_patterns_have_ss_one(m in arb_pattern(), seed in any::<u64>()) {
        let n = m.n_nodes();
        let mut perm: Vec<usize> = (0..n).collect();
        let mut state = seed | 1;
        for i in (1..n).rev() {
            state ^= state << 13;
            state ^= state >> 7;
            state ^= state << 17;
            perm.swap(i, (state % (i as u64 + 1)) as usize);
        }
        let shuffled = m.permuted(&perm);
        let ss = structural_similarity(&m, &shuffled);
        prop_assert!((ss - 1.0).abs() < 1e-12, "SS of isomorphic pair = {ss}");
    }
}

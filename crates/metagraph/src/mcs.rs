//! Maximum common subgraph (MCS) and structural similarity `SS`.
//!
//! The dual-stage candidate heuristic (Sect. III-C) scores how structurally
//! similar a candidate metagraph is to a seed metapath:
//!
//! ```text
//! SS(Mi, Mj) = (|V_M| + |E_M|)² / ((|V_Mi| + |E_Mi|) · (|V_Mj| + |E_Mj|))
//! ```
//!
//! where `M` is the maximum common subgraph of `Mi` and `Mj` \[18\]. We
//! compute MCS size by branch-and-bound over partial type-preserving
//! injections: a common subgraph is a pair of subgraphs, one in each
//! pattern, related by an isomorphism, and we maximise `|V| + |E|`. The
//! patterns at play have ≤ 5 nodes, so exhaustive search with an upper-bound
//! cut is instantaneous.

use crate::Metagraph;

/// Size `|V| + |E|` of the maximum common subgraph of `a` and `b`.
///
/// An empty mapping has size 0; single shared node types give at least 1.
pub fn mcs_size(a: &Metagraph, b: &Metagraph) -> usize {
    let mut best = 0usize;
    let mut mapping: Vec<Option<u8>> = vec![None; a.n_nodes()];
    let mut used_b: u16 = 0;
    search(a, b, 0, &mut mapping, &mut used_b, 0, &mut best);
    best
}

/// Branch and bound: decide node `u` of `a` (map to some compatible node of
/// `b`, or skip), tracking `score = mapped nodes + common edges`.
fn search(
    a: &Metagraph,
    b: &Metagraph,
    u: usize,
    mapping: &mut Vec<Option<u8>>,
    used_b: &mut u16,
    score: usize,
    best: &mut usize,
) {
    if u == a.n_nodes() {
        if score > *best {
            *best = score;
        }
        return;
    }
    // Upper bound: every remaining a-node could add 1 + its full degree.
    let remaining: usize = (u..a.n_nodes()).map(|w| 1 + a.degree(w)).sum();
    if score + remaining <= *best {
        return;
    }
    // Try mapping u to each unused, type-compatible node of b.
    for v in 0..b.n_nodes() {
        if *used_b & (1 << v) != 0 || b.node_type(v) != a.node_type(u) {
            continue;
        }
        // Common edges gained: pairs (u, w) with w already mapped and the
        // edge present in both patterns.
        let mut gained = 1usize; // the node itself
        for (w, &mapped) in mapping.iter().enumerate().take(u) {
            if let Some(vw) = mapped {
                if a.has_edge(u, w) && b.has_edge(v, vw as usize) {
                    gained += 1;
                }
            }
        }
        mapping[u] = Some(v as u8);
        *used_b |= 1 << v;
        search(a, b, u + 1, mapping, used_b, score + gained, best);
        *used_b &= !(1 << v);
        mapping[u] = None;
    }
    // Or skip u entirely.
    search(a, b, u + 1, mapping, used_b, score, best);
}

/// Structural similarity `SS(Mi, Mj)` per Sect. III-C. Returns a value in
/// `[0, 1]`, with 1 iff the patterns are isomorphic.
pub fn structural_similarity(a: &Metagraph, b: &Metagraph) -> f64 {
    let (sa, sb) = (a.size(), b.size());
    if sa == 0 || sb == 0 {
        return 0.0;
    }
    let m = mcs_size(a, b) as f64;
    (m * m) / (sa as f64 * sb as f64)
}

#[cfg(test)]
mod tests {
    use super::*;
    use mgp_graph::TypeId;

    const U: TypeId = TypeId(0);
    const A: TypeId = TypeId(1);
    const B: TypeId = TypeId(2);

    fn path_uau() -> Metagraph {
        Metagraph::from_edges(&[U, A, U], &[(0, 1), (1, 2)]).unwrap()
    }

    /// M2-like: two users sharing attrs of types A and B.
    fn m2() -> Metagraph {
        Metagraph::from_edges(&[U, A, B, U], &[(0, 1), (3, 1), (0, 2), (3, 2)]).unwrap()
    }

    #[test]
    fn identical_patterns_similarity_one() {
        let p = path_uau();
        assert_eq!(mcs_size(&p, &p), p.size());
        assert!((structural_similarity(&p, &p) - 1.0).abs() < 1e-12);
    }

    #[test]
    fn path_inside_metagraph() {
        // path u-a-u is a subgraph of m2 → MCS = the whole path (5).
        let p = path_uau();
        let m = m2();
        assert_eq!(mcs_size(&p, &m), 5);
        let ss = structural_similarity(&p, &m);
        let expect = 25.0 / (5.0 * 8.0);
        assert!((ss - expect).abs() < 1e-12, "ss={ss}, expect={expect}");
    }

    #[test]
    fn disjoint_types_similarity_zero_nodes_shared() {
        let p = Metagraph::from_edges(&[U, A, U], &[(0, 1), (1, 2)]).unwrap();
        let q = Metagraph::from_edges(&[B, B], &[(0, 1)]).unwrap();
        assert_eq!(mcs_size(&p, &q), 0);
        assert_eq!(structural_similarity(&p, &q), 0.0);
    }

    #[test]
    fn partial_overlap() {
        // u-a-u vs u-b-u share only the two user nodes (no common edge,
        // since middle types differ).
        let p = Metagraph::from_edges(&[U, A, U], &[(0, 1), (1, 2)]).unwrap();
        let q = Metagraph::from_edges(&[U, B, U], &[(0, 1), (1, 2)]).unwrap();
        assert_eq!(mcs_size(&p, &q), 2);
    }

    #[test]
    fn symmetric_arguments() {
        let p = path_uau();
        let m = m2();
        assert_eq!(mcs_size(&p, &m), mcs_size(&m, &p));
        assert!((structural_similarity(&p, &m) - structural_similarity(&m, &p)).abs() < 1e-12);
    }

    #[test]
    fn empty_pattern() {
        let e = Metagraph::new(&[]).unwrap();
        let p = path_uau();
        assert_eq!(mcs_size(&e, &p), 0);
        assert_eq!(structural_similarity(&e, &p), 0.0);
    }

    #[test]
    fn bounded_by_one() {
        // A catalogue of small patterns; SS must stay within [0,1].
        let pats = [
            path_uau(),
            m2(),
            Metagraph::from_edges(&[U, U, A], &[(0, 2), (1, 2)]).unwrap(),
            Metagraph::from_edges(&[U, A], &[(0, 1)]).unwrap(),
        ];
        for a in &pats {
            for b in &pats {
                let ss = structural_similarity(a, b);
                assert!((0.0..=1.0 + 1e-12).contains(&ss), "SS out of range: {ss}");
            }
        }
    }

    #[test]
    fn common_subgraph_respects_edges_not_just_nodes() {
        // Star with 3 users around attr vs triangle of users: shared
        // structure is users only (types differ for the attr; no user-user
        // edges in the star).
        let star = Metagraph::from_edges(&[A, U, U, U], &[(0, 1), (0, 2), (0, 3)]).unwrap();
        let tri = Metagraph::from_edges(&[U, U, U], &[(0, 1), (1, 2), (0, 2)]).unwrap();
        assert_eq!(mcs_size(&star, &tri), 3); // 3 user nodes, 0 common edges
    }
}

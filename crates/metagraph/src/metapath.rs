//! Metapaths: the path-shaped special case of metagraphs.
//!
//! Metapaths [Sun et al., PathSim] are metagraphs whose underlying shape is
//! a simple path, e.g. `user — address — user` (M3 in the paper's Fig. 2).
//! They matter twice in this system: as the *seed set* `K₀` of dual-stage
//! training (Sect. III-C — only 2–3 % of metagraphs are paths and they match
//! 2–5× faster), and as the feature space of the MPP baseline (Sect. V-B).

use crate::{Metagraph, MetagraphError};
use mgp_graph::TypeId;

/// True iff `m` is a metapath: connected, acyclic, maximum degree ≤ 2.
///
/// Single nodes and single edges count as (degenerate) paths, matching the
/// convention that the seed set contains all path-shaped patterns.
pub fn is_metapath(m: &Metagraph) -> bool {
    let n = m.n_nodes();
    if n == 0 {
        return false;
    }
    m.is_connected() && m.n_edges() == n - 1 && (0..n).all(|u| m.degree(u) <= 2)
}

/// Builds the path metagraph over the given type sequence:
/// `types[0] — types[1] — … — types[k-1]`.
pub fn path_metagraph(types: &[TypeId]) -> Result<Metagraph, MetagraphError> {
    let mut m = Metagraph::new(types)?;
    for i in 1..types.len() {
        m.add_edge(i - 1, i)?;
    }
    Ok(m)
}

/// If `m` is a metapath, returns its node indices in path order (one of the
/// two orientations); otherwise `None`.
pub fn path_order(m: &Metagraph) -> Option<Vec<usize>> {
    if !is_metapath(m) {
        return None;
    }
    let n = m.n_nodes();
    if n == 1 {
        return Some(vec![0]);
    }
    let start = (0..n).find(|&u| m.degree(u) == 1)?;
    let mut order = Vec::with_capacity(n);
    let mut prev = usize::MAX;
    let mut cur = start;
    loop {
        order.push(cur);
        let next = m.neighbors(cur).find(|&v| v != prev);
        match next {
            Some(v) => {
                prev = cur;
                cur = v;
            }
            None => break,
        }
    }
    (order.len() == n).then_some(order)
}

#[cfg(test)]
mod tests {
    use super::*;

    const U: TypeId = TypeId(0);
    const A: TypeId = TypeId(1);
    const B: TypeId = TypeId(2);

    #[test]
    fn recognises_paths() {
        let p = path_metagraph(&[U, A, U]).unwrap();
        assert!(is_metapath(&p));
        let single = Metagraph::new(&[U]).unwrap();
        assert!(is_metapath(&single));
        let edge = path_metagraph(&[U, A]).unwrap();
        assert!(is_metapath(&edge));
    }

    #[test]
    fn rejects_nonpaths() {
        // Star.
        let star = Metagraph::from_edges(&[A, U, U, U], &[(0, 1), (0, 2), (0, 3)]).unwrap();
        assert!(!is_metapath(&star));
        // Cycle.
        let cyc = Metagraph::from_edges(&[U, A, U, A], &[(0, 1), (1, 2), (2, 3), (3, 0)]).unwrap();
        assert!(!is_metapath(&cyc));
        // Disconnected.
        let disc = Metagraph::from_edges(&[U, A, U, A], &[(0, 1), (2, 3)]).unwrap();
        assert!(!is_metapath(&disc));
        // M2-style joint pattern.
        let m2 = Metagraph::from_edges(&[U, A, B, U], &[(0, 1), (3, 1), (0, 2), (3, 2)]).unwrap();
        assert!(!is_metapath(&m2));
        // Empty.
        assert!(!is_metapath(&Metagraph::new(&[]).unwrap()));
    }

    #[test]
    fn path_order_recovers_sequence() {
        let p = path_metagraph(&[U, A, B, A, U]).unwrap();
        let order = path_order(&p).unwrap();
        // Either orientation is fine; types along the order must match.
        let tys: Vec<TypeId> = order.iter().map(|&u| p.node_type(u)).collect();
        assert!(tys == vec![U, A, B, A, U]);
        // Consecutive entries must be edges.
        for w in order.windows(2) {
            assert!(p.has_edge(w[0], w[1]));
        }
    }

    #[test]
    fn path_order_none_for_nonpath() {
        let star = Metagraph::from_edges(&[A, U, U, U], &[(0, 1), (0, 2), (0, 3)]).unwrap();
        assert!(path_order(&star).is_none());
    }

    #[test]
    fn path_order_singleton() {
        let single = Metagraph::new(&[U]).unwrap();
        assert_eq!(path_order(&single), Some(vec![0]));
    }

    #[test]
    fn shuffled_path_still_a_path() {
        let p = path_metagraph(&[U, A, B]).unwrap().permuted(&[2, 0, 1]);
        assert!(is_metapath(&p));
        assert!(path_order(&p).is_some());
    }
}

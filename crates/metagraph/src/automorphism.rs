//! Automorphisms and the symmetric-node relation of Def. 1.
//!
//! A metagraph `M` is *symmetric* (Def. 1) when a non-empty set `Ψ` of
//! disjoint node pairs can be exchanged without changing `E_M` — i.e. there
//! is a non-trivial type-preserving automorphism of `M` built from
//! transpositions. Two nodes `u, u'` are *symmetric to each other* when some
//! automorphism swaps them (maps `u → u'` and `u' → u`). Instances are then
//! counted per symmetric pair: `ContainsSym(S, x, y)` in Eq. 1 requires
//! `φ(x)` and `φ(y)` to be symmetric positions of `M`.
//!
//! For the ≤ 5-node metagraphs the system mines, brute-force backtracking
//! over type/degree-compatible bijections is microseconds; we enumerate the
//! full automorphism group once per metagraph and cache the derived
//! [`SymmetryInfo`].

use crate::Metagraph;
use serde::{Deserialize, Serialize};

/// The full automorphism group of a metagraph (always contains the
/// identity), enumerated by backtracking.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Automorphisms {
    perms: Vec<Vec<u8>>,
}

impl Automorphisms {
    /// Enumerates all type- and adjacency-preserving permutations of `m`.
    pub fn compute(m: &Metagraph) -> Self {
        let n = m.n_nodes();
        let mut perms = Vec::new();
        let mut assign: Vec<u8> = vec![0; n];
        let mut used: u16 = 0;
        backtrack(m, 0, &mut assign, &mut used, &mut perms);
        Automorphisms { perms }
    }

    /// `|Aut(M)|`.
    pub fn count(&self) -> usize {
        self.perms.len()
    }

    /// Iterates the permutations; `perm[i]` is the image of node `i`.
    pub fn iter(&self) -> impl Iterator<Item = &[u8]> {
        self.perms.iter().map(Vec::as_slice)
    }

    /// True if some non-identity automorphism exists.
    pub fn has_nontrivial(&self) -> bool {
        self.perms.len() > 1
    }
}

fn backtrack(
    m: &Metagraph,
    pos: usize,
    assign: &mut Vec<u8>,
    used: &mut u16,
    out: &mut Vec<Vec<u8>>,
) {
    let n = m.n_nodes();
    if pos == n {
        out.push(assign.clone());
        return;
    }
    for cand in 0..n {
        if *used & (1 << cand) != 0 {
            continue;
        }
        if m.node_type(cand) != m.node_type(pos) || m.degree(cand) != m.degree(pos) {
            continue;
        }
        // Adjacency consistency with already-assigned positions.
        let ok =
            (0..pos).all(|prev| m.has_edge(pos, prev) == m.has_edge(cand, assign[prev] as usize));
        if !ok {
            continue;
        }
        assign[pos] = cand as u8;
        *used |= 1 << cand;
        backtrack(m, pos + 1, assign, used, out);
        *used &= !(1 << cand);
    }
}

/// Derived symmetry structure: which node pairs are symmetric, and the
/// orbit partition of the automorphism group.
#[derive(Debug, Clone, PartialEq, Eq, Serialize, Deserialize)]
pub struct SymmetryInfo {
    /// `sym[u]` has bit `v` set iff `u ≠ v` and some automorphism swaps
    /// `u` and `v` (the Def. 1 relation).
    sym: Vec<u16>,
    /// `orbit[u]` is the orbit id of node `u` (orbits of the full group).
    orbit: Vec<u8>,
    /// `|Aut(M)|`.
    aut_count: usize,
}

impl SymmetryInfo {
    /// Computes symmetry info from the automorphism group.
    pub fn compute(m: &Metagraph) -> Self {
        let auts = Automorphisms::compute(m);
        Self::from_automorphisms(m, &auts)
    }

    /// Computes symmetry info from a pre-computed group.
    pub fn from_automorphisms(m: &Metagraph, auts: &Automorphisms) -> Self {
        let n = m.n_nodes();
        let mut sym = vec![0u16; n];
        // Union-find for orbits.
        let mut parent: Vec<u8> = (0..n as u8).collect();
        fn find(parent: &mut [u8], x: u8) -> u8 {
            let mut r = x;
            while parent[r as usize] != r {
                r = parent[r as usize];
            }
            let mut c = x;
            while parent[c as usize] != r {
                let next = parent[c as usize];
                parent[c as usize] = r;
                c = next;
            }
            r
        }
        for perm in auts.iter() {
            for u in 0..n {
                let v = perm[u] as usize;
                if v != u {
                    let (ru, rv) = (find(&mut parent, u as u8), find(&mut parent, v as u8));
                    if ru != rv {
                        parent[rv as usize] = ru;
                    }
                    // Swap relation: perm maps u→v and v→u.
                    if perm[v] as usize == u {
                        sym[u] |= 1 << v;
                        sym[v] |= 1 << u;
                    }
                }
            }
        }
        // Normalise orbit ids to 0..k in first-occurrence order.
        let mut orbit = vec![0u8; n];
        let mut remap: Vec<Option<u8>> = vec![None; n];
        let mut next = 0u8;
        for (u, slot) in orbit.iter_mut().enumerate() {
            let r = find(&mut parent, u as u8) as usize;
            *slot = *remap[r].get_or_insert_with(|| {
                let id = next;
                next += 1;
                id
            });
        }
        SymmetryInfo {
            sym,
            orbit,
            aut_count: auts.count(),
        }
    }

    /// True iff `u` and `v` are symmetric (some automorphism swaps them).
    #[inline]
    pub fn are_symmetric(&self, u: usize, v: usize) -> bool {
        u != v && self.sym[u] & (1 << v) != 0
    }

    /// Bitmask of nodes symmetric to `u`.
    #[inline]
    pub fn symmetric_mask(&self, u: usize) -> u16 {
        self.sym[u]
    }

    /// Number of nodes symmetric to `u`.
    #[inline]
    pub fn n_symmetric(&self, u: usize) -> usize {
        self.sym[u].count_ones() as usize
    }

    /// True iff the metagraph is symmetric per Def. 1 (some symmetric pair
    /// exists).
    pub fn is_symmetric_metagraph(&self) -> bool {
        self.sym.iter().any(|&mask| mask != 0)
    }

    /// Orbit id of a node under the full automorphism group.
    #[inline]
    pub fn orbit_of(&self, u: usize) -> usize {
        self.orbit[u] as usize
    }

    /// Number of orbits.
    pub fn n_orbits(&self) -> usize {
        self.orbit
            .iter()
            .map(|&o| o as usize + 1)
            .max()
            .unwrap_or(0)
    }

    /// `|Aut(M)|` as computed during construction.
    pub fn aut_count(&self) -> usize {
        self.aut_count
    }

    /// All symmetric pairs `(u, v)` with `u < v` whose nodes both have the
    /// given anchor type. These are the positions at which a pair of anchor
    /// objects `x, y` may "share" the metagraph (Eq. 1).
    pub fn anchor_pairs(&self, m: &Metagraph, anchor: mgp_graph::TypeId) -> Vec<(usize, usize)> {
        let mut out = Vec::new();
        for u in 0..m.n_nodes() {
            if m.node_type(u) != anchor {
                continue;
            }
            for v in (u + 1)..m.n_nodes() {
                if m.node_type(v) == anchor && self.are_symmetric(u, v) {
                    out.push((u, v));
                }
            }
        }
        out
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use mgp_graph::TypeId;

    const U: TypeId = TypeId(0);
    const A: TypeId = TypeId(1);
    const B: TypeId = TypeId(2);

    /// M1 (Fig. 2a): user(0), user(1), school(2), major(3); users share both.
    fn m1() -> Metagraph {
        Metagraph::from_edges(&[U, U, A, B], &[(0, 2), (1, 2), (0, 3), (1, 3)]).unwrap()
    }

    /// M3 (Fig. 2b): user — address — user.
    fn m3() -> Metagraph {
        Metagraph::from_edges(&[U, A, U], &[(0, 1), (1, 2)]).unwrap()
    }

    /// M5 (Fig. 5): six nodes, two symmetric (user, major) wings plus a
    /// shared school and a middle user.
    /// Nodes: 0=user(left) 1=major(left) 2=school 3=user(mid) 4=user(right) 5=major(right)
    /// Edges: 0-1, 0-2, 3-2, 4-2, 4-5, and majors attached to mid user: 1-3, 5-3.
    fn m5() -> Metagraph {
        Metagraph::from_edges(
            &[U, B, A, U, U, B],
            &[(0, 1), (0, 2), (3, 2), (4, 2), (4, 5), (1, 3), (5, 3)],
        )
        .unwrap()
    }

    #[test]
    fn identity_always_present() {
        let auts = Automorphisms::compute(&m3());
        assert!(auts.iter().any(|p| p == [0, 1, 2]));
    }

    #[test]
    fn m3_swap_symmetry() {
        let m = m3();
        let auts = Automorphisms::compute(&m);
        assert_eq!(auts.count(), 2); // identity + end swap
        let info = SymmetryInfo::compute(&m);
        assert!(info.are_symmetric(0, 2));
        assert!(!info.are_symmetric(0, 1));
        assert!(info.is_symmetric_metagraph());
        assert_eq!(info.aut_count(), 2);
        assert_eq!(info.anchor_pairs(&m, U), vec![(0, 2)]);
    }

    #[test]
    fn m1_user_swap() {
        let m = m1();
        let info = SymmetryInfo::compute(&m);
        assert!(info.are_symmetric(0, 1));
        assert!(!info.are_symmetric(2, 3)); // school vs major: different types
        assert_eq!(info.anchor_pairs(&m, U), vec![(0, 1)]);
        assert_eq!(info.aut_count(), 2);
        // Orbits: {0,1}, {2}, {3}.
        assert_eq!(info.orbit_of(0), info.orbit_of(1));
        assert_ne!(info.orbit_of(2), info.orbit_of(3));
        assert_eq!(info.n_orbits(), 3);
    }

    #[test]
    fn m5_wing_symmetry() {
        let m = m5();
        let info = SymmetryInfo::compute(&m);
        // Wings (0,4) users and (1,5) majors are symmetric; middle user 3 is not.
        assert!(info.are_symmetric(0, 4));
        assert!(info.are_symmetric(1, 5));
        assert!(!info.are_symmetric(0, 3));
        assert!(!info.are_symmetric(4, 3));
        assert_eq!(info.anchor_pairs(&m, U), vec![(0, 4)]);
    }

    #[test]
    fn asymmetric_metagraph() {
        // user — school, distinct types everywhere: no symmetry.
        let m = Metagraph::from_edges(&[U, A], &[(0, 1)]).unwrap();
        let info = SymmetryInfo::compute(&m);
        assert!(!info.is_symmetric_metagraph());
        assert_eq!(info.aut_count(), 1);
        assert_eq!(info.n_orbits(), 2);
    }

    #[test]
    fn triangle_full_symmetry() {
        // A triangle of three same-type nodes: Aut = S3 (6 perms).
        let m = Metagraph::from_edges(&[U, U, U], &[(0, 1), (1, 2), (0, 2)]).unwrap();
        let auts = Automorphisms::compute(&m);
        assert_eq!(auts.count(), 6);
        let info = SymmetryInfo::from_automorphisms(&m, &auts);
        assert!(info.are_symmetric(0, 1));
        assert!(info.are_symmetric(1, 2));
        assert!(info.are_symmetric(0, 2));
        assert_eq!(info.n_orbits(), 1);
        assert_eq!(info.anchor_pairs(&m, U), vec![(0, 1), (0, 2), (1, 2)]);
    }

    #[test]
    fn square_alternating_types() {
        // user-attr-user-attr square: users symmetric, attrs symmetric.
        let m = Metagraph::from_edges(&[U, A, U, A], &[(0, 1), (1, 2), (2, 3), (3, 0)]).unwrap();
        let info = SymmetryInfo::compute(&m);
        assert!(info.are_symmetric(0, 2));
        assert!(info.are_symmetric(1, 3));
        assert!(!info.are_symmetric(0, 1));
        // Aut of this square preserving types: {id, swap users, swap attrs, both} = 4.
        assert_eq!(info.aut_count(), 4);
    }

    #[test]
    fn degree_prunes_candidates() {
        // Path of 3 users: ends symmetric, middle fixed despite same type.
        let m = Metagraph::from_edges(&[U, U, U], &[(0, 1), (1, 2)]).unwrap();
        let info = SymmetryInfo::compute(&m);
        assert!(info.are_symmetric(0, 2));
        assert!(!info.are_symmetric(0, 1));
        assert_eq!(info.anchor_pairs(&m, U), vec![(0, 2)]);
    }

    #[test]
    fn empty_and_singleton() {
        let empty = Metagraph::new(&[]).unwrap();
        let info = SymmetryInfo::compute(&empty);
        assert!(!info.is_symmetric_metagraph());
        assert_eq!(info.n_orbits(), 0);
        let single = Metagraph::new(&[U]).unwrap();
        let info = SymmetryInfo::compute(&single);
        assert!(!info.is_symmetric_metagraph());
        assert_eq!(info.aut_count(), 1);
    }
}

//! # mgp-metagraph — metagraph patterns and their structure theory
//!
//! A **metagraph** (Fang et al., ICDE 2016, Sect. II-A) is a small typed
//! pattern graph `M = (V_M, E_M)`: each node denotes an object *type* (the
//! value is immaterial), and an *instance* of `M` on an object graph `G` is a
//! subgraph of `G` whose nodes biject onto `V_M` preserving types and edges
//! (Def. 2). Metagraphs generalise metapaths — e.g. the "close friend"
//! pattern `M2` joins a shared employer *and* a shared hobby between two
//! users, which no single path can express.
//!
//! This crate provides everything the rest of the system needs to reason
//! about metagraphs *structurally* (no object graph involved):
//!
//! * [`Metagraph`] — compact representation (≤ 16 nodes, bitmask adjacency);
//! * [`automorphism`] — automorphism enumeration, the symmetric-node-pair
//!   relation of Def. 1, and orbit computation;
//! * [`decompose`] — the symmetric-component decomposition and simplified
//!   metagraph `M⁺` that power SymISO (Sect. IV-C, Fig. 5);
//! * [`canonical`] — canonical codes for deduplication during mining;
//! * [`mcs`] — maximum common subgraph and the structural similarity `SS`
//!   used by the dual-stage candidate heuristic (Sect. III-C);
//! * [`metapath`] — recognising and constructing path-shaped metagraphs
//!   (the seeds `K₀` of dual-stage training);
//! * [`dot`] — Graphviz rendering for debugging and documentation.

#![warn(missing_docs)]

pub mod automorphism;
pub mod canonical;
pub mod decompose;
pub mod dot;
pub mod enumerate;
pub mod mcs;
pub mod metagraph;
pub mod metapath;

pub use automorphism::{Automorphisms, SymmetryInfo};
pub use canonical::CanonicalCode;
pub use decompose::{Component, Decomposition};
pub use enumerate::{enumerate_connected, enumerate_proximity_patterns};
pub use mcs::{mcs_size, structural_similarity};
pub use metagraph::{Metagraph, MetagraphError, MAX_NODES};
pub use metapath::{is_metapath, path_metagraph};

//! Graphviz (DOT) rendering of metagraphs, for docs and debugging.

use crate::Metagraph;
use mgp_graph::TypeRegistry;

/// Renders `m` as an undirected Graphviz graph. If `types` is provided,
/// nodes are labelled with type names; otherwise with raw type ids.
pub fn to_dot(m: &Metagraph, name: &str, types: Option<&TypeRegistry>) -> String {
    let mut out = String::new();
    out.push_str(&format!("graph {name} {{\n"));
    out.push_str("  node [shape=box, style=rounded];\n");
    for u in 0..m.n_nodes() {
        let ty = m.node_type(u);
        let label = types
            .and_then(|r| r.name(ty))
            .map(str::to_owned)
            .unwrap_or_else(|| ty.to_string());
        out.push_str(&format!("  v{u} [label=\"{label}\"];\n"));
    }
    for (u, v) in m.edges() {
        out.push_str(&format!("  v{u} -- v{v};\n"));
    }
    out.push_str("}\n");
    out
}

#[cfg(test)]
mod tests {
    use super::*;
    use mgp_graph::TypeId;

    #[test]
    fn renders_with_type_names() {
        let mut reg = TypeRegistry::new();
        let user = reg.intern("user");
        let addr = reg.intern("address");
        let m = Metagraph::from_edges(&[user, addr, user], &[(0, 1), (1, 2)]).unwrap();
        let dot = to_dot(&m, "M3", Some(&reg));
        assert!(dot.contains("graph M3 {"));
        assert!(dot.contains("v0 [label=\"user\"]"));
        assert!(dot.contains("v1 [label=\"address\"]"));
        assert!(dot.contains("v0 -- v1;"));
        assert!(dot.contains("v1 -- v2;"));
        assert!(!dot.contains("v0 -- v2"));
    }

    #[test]
    fn renders_without_registry() {
        let m = Metagraph::from_edges(&[TypeId(0), TypeId(1)], &[(0, 1)]).unwrap();
        let dot = to_dot(&m, "e", None);
        assert!(dot.contains("label=\"t0\""));
        assert!(dot.contains("label=\"t1\""));
    }
}

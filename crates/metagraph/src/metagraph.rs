//! The [`Metagraph`] pattern type.

use mgp_graph::TypeId;
use serde::{Deserialize, Serialize};

/// Maximum number of nodes in a metagraph.
///
/// The paper restricts mined metagraphs to at most 5 nodes ("found to be
/// adequate in expressing various interactions between users", Sect. V-A);
/// we allow up to 16 so adjacency fits in one `u16` bitmask per node.
pub const MAX_NODES: usize = 16;

/// Errors from metagraph construction.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum MetagraphError {
    /// More than [`MAX_NODES`] nodes.
    TooManyNodes(usize),
    /// A self-loop was requested; metagraphs are simple.
    SelfLoop(usize),
    /// A node index was out of range.
    BadNode(usize),
}

impl std::fmt::Display for MetagraphError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            MetagraphError::TooManyNodes(n) => {
                write!(f, "metagraph has {n} nodes, max {MAX_NODES}")
            }
            MetagraphError::SelfLoop(u) => write!(f, "self-loop on metagraph node {u}"),
            MetagraphError::BadNode(u) => write!(f, "metagraph node {u} out of range"),
        }
    }
}

impl std::error::Error for MetagraphError {}

/// A metagraph `M = (V_M, E_M)` with type mapping `τ_M` (Sect. II-A).
///
/// Nodes are `0..n` (`n ≤ 16`); each carries a [`TypeId`]. Undirected,
/// simple. Adjacency is a bitmask per node for O(1) edge tests and fast
/// neighbourhood iteration — metagraphs are tiny and matched millions of
/// times, so this representation is deliberately branch-light.
///
/// ```
/// use mgp_graph::TypeId;
/// use mgp_metagraph::Metagraph;
/// // M3 of the paper (Fig. 2b): user — address — user, a metapath.
/// let user = TypeId(0);
/// let address = TypeId(1);
/// let m3 = Metagraph::from_edges(&[user, address, user], &[(0, 1), (1, 2)]).unwrap();
/// assert_eq!(m3.n_nodes(), 3);
/// assert_eq!(m3.n_edges(), 2);
/// assert!(m3.has_edge(0, 1));
/// assert!(!m3.has_edge(0, 2));
/// assert!(m3.is_connected());
/// ```
#[derive(Debug, Clone, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub struct Metagraph {
    types: Vec<TypeId>,
    adj: Vec<u16>,
    n_edges: u8,
}

impl Metagraph {
    /// Creates an edgeless metagraph over the given node types.
    pub fn new(types: &[TypeId]) -> Result<Self, MetagraphError> {
        if types.len() > MAX_NODES {
            return Err(MetagraphError::TooManyNodes(types.len()));
        }
        Ok(Metagraph {
            types: types.to_vec(),
            adj: vec![0; types.len()],
            n_edges: 0,
        })
    }

    /// Creates a metagraph from node types and an edge list.
    pub fn from_edges(types: &[TypeId], edges: &[(usize, usize)]) -> Result<Self, MetagraphError> {
        let mut m = Metagraph::new(types)?;
        for &(u, v) in edges {
            m.add_edge(u, v)?;
        }
        Ok(m)
    }

    /// Adds an undirected edge. Idempotent.
    pub fn add_edge(&mut self, u: usize, v: usize) -> Result<(), MetagraphError> {
        if u == v {
            return Err(MetagraphError::SelfLoop(u));
        }
        let n = self.types.len();
        if u >= n {
            return Err(MetagraphError::BadNode(u));
        }
        if v >= n {
            return Err(MetagraphError::BadNode(v));
        }
        if self.adj[u] & (1 << v) == 0 {
            self.adj[u] |= 1 << v;
            self.adj[v] |= 1 << u;
            self.n_edges += 1;
        }
        Ok(())
    }

    /// Appends a new node of the given type, returning its index.
    ///
    /// # Errors
    /// Fails if the metagraph is already at [`MAX_NODES`].
    pub fn add_node(&mut self, ty: TypeId) -> Result<usize, MetagraphError> {
        if self.types.len() >= MAX_NODES {
            return Err(MetagraphError::TooManyNodes(self.types.len() + 1));
        }
        self.types.push(ty);
        self.adj.push(0);
        Ok(self.types.len() - 1)
    }

    /// Number of nodes `|V_M|`.
    #[inline(always)]
    pub fn n_nodes(&self) -> usize {
        self.types.len()
    }

    /// Number of edges `|E_M|`.
    #[inline(always)]
    pub fn n_edges(&self) -> usize {
        self.n_edges as usize
    }

    /// Size measure `|V_M| + |E_M|`, as used by the `SS` similarity.
    #[inline]
    pub fn size(&self) -> usize {
        self.n_nodes() + self.n_edges()
    }

    /// Type `τ_M(u)` of a pattern node.
    #[inline(always)]
    pub fn node_type(&self, u: usize) -> TypeId {
        self.types[u]
    }

    /// The slice of all node types.
    #[inline]
    pub fn node_types(&self) -> &[TypeId] {
        &self.types
    }

    /// Edge test, O(1).
    #[inline(always)]
    pub fn has_edge(&self, u: usize, v: usize) -> bool {
        u < self.types.len() && v < self.types.len() && self.adj[u] & (1 << v) != 0
    }

    /// Neighbour bitmask of `u`.
    #[inline(always)]
    pub fn neighbors_mask(&self, u: usize) -> u16 {
        self.adj[u]
    }

    /// Iterates the neighbours of `u` in increasing index order.
    pub fn neighbors(&self, u: usize) -> impl Iterator<Item = usize> + '_ {
        BitIter(self.adj[u])
    }

    /// Degree of `u`.
    #[inline(always)]
    pub fn degree(&self, u: usize) -> usize {
        self.adj[u].count_ones() as usize
    }

    /// All edges as `(u, v)` with `u < v`, lexicographic.
    pub fn edges(&self) -> Vec<(usize, usize)> {
        let mut out = Vec::with_capacity(self.n_edges());
        for u in 0..self.n_nodes() {
            for v in BitIter(self.adj[u]) {
                if v > u {
                    out.push((u, v));
                }
            }
        }
        out
    }

    /// True iff the metagraph is connected (the empty metagraph is not).
    pub fn is_connected(&self) -> bool {
        let n = self.n_nodes();
        if n == 0 {
            return false;
        }
        let mut seen: u16 = 1;
        let mut frontier: u16 = 1;
        while frontier != 0 {
            let mut next: u16 = 0;
            for u in BitIter(frontier) {
                next |= self.adj[u];
            }
            frontier = next & !seen;
            seen |= next;
        }
        seen.count_ones() as usize == n
    }

    /// Indices of nodes with the given type.
    pub fn nodes_of_type(&self, ty: TypeId) -> Vec<usize> {
        (0..self.n_nodes())
            .filter(|&u| self.types[u] == ty)
            .collect()
    }

    /// Number of nodes with the given type.
    pub fn count_type(&self, ty: TypeId) -> usize {
        self.types.iter().filter(|&&t| t == ty).count()
    }

    /// The subpattern induced by keeping the nodes in `keep` (in the given
    /// order — node `i` of the result is `keep[i]`).
    pub fn induced(&self, keep: &[usize]) -> Metagraph {
        let types: Vec<TypeId> = keep.iter().map(|&u| self.types[u]).collect();
        let mut m = Metagraph::new(&types).expect("induced pattern within bounds");
        for (i, &u) in keep.iter().enumerate() {
            for (j, &v) in keep.iter().enumerate().skip(i + 1) {
                if self.has_edge(u, v) {
                    m.add_edge(i, j).unwrap();
                }
            }
        }
        m
    }

    /// Returns a copy with nodes permuted: node `i` of the result is node
    /// `perm[i]` of `self`.
    pub fn permuted(&self, perm: &[usize]) -> Metagraph {
        debug_assert_eq!(perm.len(), self.n_nodes());
        self.induced(perm)
    }

    /// A compact human-readable description like `[0:t0 1:t1] (0-1)`.
    pub fn brief(&self) -> String {
        let nodes: Vec<String> = self
            .types
            .iter()
            .enumerate()
            .map(|(i, t)| format!("{i}:{t}"))
            .collect();
        let edges: Vec<String> = self
            .edges()
            .iter()
            .map(|(u, v)| format!("{u}-{v}"))
            .collect();
        format!("[{}] ({})", nodes.join(" "), edges.join(" "))
    }
}

/// Iterator over set bit positions of a `u16`.
struct BitIter(u16);

impl Iterator for BitIter {
    type Item = usize;

    #[inline(always)]
    fn next(&mut self) -> Option<usize> {
        if self.0 == 0 {
            None
        } else {
            let i = self.0.trailing_zeros() as usize;
            self.0 &= self.0 - 1;
            Some(i)
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    const U: TypeId = TypeId(0);
    const S: TypeId = TypeId(1);

    /// M1 of the paper (Fig. 2a): two users sharing a school and a major.
    pub(crate) fn m1() -> Metagraph {
        // nodes: 0=user 1=user 2=school 3=major
        Metagraph::from_edges(
            &[TypeId(0), TypeId(0), TypeId(1), TypeId(2)],
            &[(0, 2), (1, 2), (0, 3), (1, 3)],
        )
        .unwrap()
    }

    #[test]
    fn construction_and_accessors() {
        let m = m1();
        assert_eq!(m.n_nodes(), 4);
        assert_eq!(m.n_edges(), 4);
        assert_eq!(m.size(), 8);
        assert_eq!(m.node_type(0), TypeId(0));
        assert_eq!(m.node_type(2), TypeId(1));
        assert!(m.has_edge(0, 2));
        assert!(m.has_edge(2, 0));
        assert!(!m.has_edge(0, 1));
        assert_eq!(m.degree(0), 2);
        assert_eq!(m.degree(2), 2);
        assert_eq!(m.neighbors(0).collect::<Vec<_>>(), vec![2, 3]);
        assert_eq!(m.count_type(TypeId(0)), 2);
        assert_eq!(m.nodes_of_type(TypeId(0)), vec![0, 1]);
    }

    #[test]
    fn edges_listed_once_sorted() {
        let m = m1();
        assert_eq!(m.edges(), vec![(0, 2), (0, 3), (1, 2), (1, 3)]);
    }

    #[test]
    fn add_edge_idempotent() {
        let mut m = Metagraph::new(&[U, S]).unwrap();
        m.add_edge(0, 1).unwrap();
        m.add_edge(1, 0).unwrap();
        assert_eq!(m.n_edges(), 1);
    }

    #[test]
    fn rejects_self_loop_and_bad_nodes() {
        let mut m = Metagraph::new(&[U, S]).unwrap();
        assert_eq!(m.add_edge(0, 0), Err(MetagraphError::SelfLoop(0)));
        assert_eq!(m.add_edge(0, 7), Err(MetagraphError::BadNode(7)));
        assert_eq!(m.add_edge(9, 0), Err(MetagraphError::BadNode(9)));
    }

    #[test]
    fn rejects_too_many_nodes() {
        let types = vec![U; MAX_NODES + 1];
        assert!(matches!(
            Metagraph::new(&types),
            Err(MetagraphError::TooManyNodes(_))
        ));
        let mut m = Metagraph::new(&[U; MAX_NODES]).unwrap();
        assert!(matches!(
            m.add_node(U),
            Err(MetagraphError::TooManyNodes(_))
        ));
    }

    #[test]
    fn connectivity() {
        let m = m1();
        assert!(m.is_connected());
        let disconnected = Metagraph::from_edges(&[U, U, S, S], &[(0, 2), (1, 3)]).unwrap();
        assert!(!disconnected.is_connected());
        let empty = Metagraph::new(&[]).unwrap();
        assert!(!empty.is_connected());
        let singleton = Metagraph::new(&[U]).unwrap();
        assert!(singleton.is_connected());
    }

    #[test]
    fn induced_subpattern() {
        let m = m1();
        // Keep user 0, school 2 → a single edge.
        let sub = m.induced(&[0, 2]);
        assert_eq!(sub.n_nodes(), 2);
        assert_eq!(sub.n_edges(), 1);
        assert_eq!(sub.node_type(0), TypeId(0));
        assert_eq!(sub.node_type(1), TypeId(1));
        assert!(sub.has_edge(0, 1));
    }

    #[test]
    fn permuted_preserves_structure() {
        let m = m1();
        let p = m.permuted(&[1, 0, 3, 2]);
        assert_eq!(p.n_edges(), m.n_edges());
        // node 0 of p is old node 1 (user), still adjacent to both attrs.
        assert_eq!(p.degree(0), 2);
        assert!(p.has_edge(0, 2)); // old (1,3)
    }

    #[test]
    fn grow_with_add_node() {
        let mut m = Metagraph::new(&[U]).unwrap();
        let v = m.add_node(S).unwrap();
        assert_eq!(v, 1);
        m.add_edge(0, v).unwrap();
        assert!(m.is_connected());
    }

    #[test]
    fn brief_is_stable() {
        let m = Metagraph::from_edges(&[U, S], &[(0, 1)]).unwrap();
        assert_eq!(m.brief(), "[0:t0 1:t1] (0-1)");
    }

    #[test]
    fn serde_roundtrip() {
        let m = m1();
        let json = serde_json::to_string(&m).unwrap();
        let back: Metagraph = serde_json::from_str(&json).unwrap();
        assert_eq!(back, m);
    }
}

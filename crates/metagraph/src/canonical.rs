//! Canonical codes for metagraphs.
//!
//! Two metagraphs that differ only by a relabelling of their nodes denote
//! the same pattern; the miner must recognise and deduplicate them
//! (Sect. II-B offline step 1). [`CanonicalCode::of`] computes a complete
//! isomorphism invariant: the lexicographically smallest
//! `(sorted types, adjacency bits)` encoding over all node orderings.
//!
//! The search space is pruned hard: the minimal encoding must list node
//! types in non-decreasing order, so only permutations *within* type classes
//! are enumerated. Mined patterns have ≤ 5 nodes, making this microseconds;
//! the implementation stays correct up to [`crate::MAX_NODES`].

use crate::Metagraph;
use mgp_graph::TypeId;
use serde::{Deserialize, Serialize};

/// A complete isomorphism invariant of a [`Metagraph`].
///
/// `Eq`/`Hash`/`Ord` compare the canonical encoding, so two metagraphs are
/// isomorphic iff their codes are equal.
#[derive(Debug, Clone, PartialEq, Eq, PartialOrd, Ord, Hash, Serialize, Deserialize)]
pub struct CanonicalCode {
    /// Node types in canonical (non-decreasing) order.
    types: Vec<TypeId>,
    /// Adjacency rows (bitmask per node) under the canonical ordering.
    adj: Vec<u16>,
}

impl CanonicalCode {
    /// Computes the canonical code of `m`.
    pub fn of(m: &Metagraph) -> Self {
        let n = m.n_nodes();
        // Group node indices by type, types ascending.
        let mut order: Vec<usize> = (0..n).collect();
        order.sort_by_key(|&u| (m.node_type(u), u));
        let types: Vec<TypeId> = order.iter().map(|&u| m.node_type(u)).collect();

        // Type class boundaries in `order`.
        let mut classes: Vec<(usize, usize)> = Vec::new();
        let mut start = 0;
        for i in 1..=n {
            if i == n || types[i] != types[start] {
                classes.push((start, i));
                start = i;
            }
        }

        let mut best: Option<Vec<u16>> = None;
        let mut perm = order.clone();
        permute_classes(m, &classes, 0, &mut perm, &mut best);

        CanonicalCode {
            types,
            adj: best.unwrap_or_default(),
        }
    }

    /// Number of nodes in the encoded pattern.
    pub fn n_nodes(&self) -> usize {
        self.types.len()
    }

    /// Rebuilds a concrete [`Metagraph`] in canonical node order.
    pub fn to_metagraph(&self) -> Metagraph {
        let mut m = Metagraph::new(&self.types).expect("code within bounds");
        for u in 0..self.types.len() {
            let mut bits = self.adj[u];
            while bits != 0 {
                let v = bits.trailing_zeros() as usize;
                bits &= bits - 1;
                if v > u {
                    m.add_edge(u, v).unwrap();
                }
            }
        }
        m
    }
}

/// Enumerates permutations within each type class, tracking the minimal
/// adjacency encoding.
fn permute_classes(
    m: &Metagraph,
    classes: &[(usize, usize)],
    class_idx: usize,
    perm: &mut Vec<usize>,
    best: &mut Option<Vec<u16>>,
) {
    if class_idx == classes.len() {
        let code = encode(m, perm);
        match best {
            None => *best = Some(code),
            Some(b) => {
                if code < *b {
                    *b = code;
                }
            }
        }
        return;
    }
    let (s, e) = classes[class_idx];
    heap_permute(perm, s, e, &mut |perm| {
        permute_classes(m, classes, class_idx + 1, perm, best);
    });
}

/// Heap's algorithm over the subrange `[s, e)` of `perm`, calling `f` for
/// each arrangement (the range is restored afterwards).
fn heap_permute(perm: &mut Vec<usize>, s: usize, e: usize, f: &mut impl FnMut(&mut Vec<usize>)) {
    fn rec(perm: &mut Vec<usize>, s: usize, k: usize, f: &mut impl FnMut(&mut Vec<usize>)) {
        if k <= 1 {
            f(perm);
            return;
        }
        for i in 0..k {
            rec(perm, s, k - 1, f);
            if k.is_multiple_of(2) {
                perm.swap(s + i, s + k - 1);
            } else {
                perm.swap(s, s + k - 1);
            }
        }
    }
    let k = e - s;
    if k == 0 {
        f(perm);
    } else {
        rec(perm, s, k, f);
    }
}

/// Adjacency rows of `m` rewritten under `perm` (canonical node `i` is
/// original node `perm[i]`).
fn encode(m: &Metagraph, perm: &[usize]) -> Vec<u16> {
    let n = perm.len();
    // inverse[orig] = canonical position
    let mut inverse = [0usize; crate::MAX_NODES];
    for (i, &u) in perm.iter().enumerate() {
        inverse[u] = i;
    }
    let mut rows = vec![0u16; n];
    for (i, &u) in perm.iter().enumerate() {
        for v in m.neighbors(u) {
            rows[i] |= 1 << inverse[v];
        }
    }
    rows
}

#[cfg(test)]
mod tests {
    use super::*;

    const U: TypeId = TypeId(0);
    const A: TypeId = TypeId(1);
    const B: TypeId = TypeId(2);

    fn m1() -> Metagraph {
        Metagraph::from_edges(&[U, U, A, B], &[(0, 2), (1, 2), (0, 3), (1, 3)]).unwrap()
    }

    #[test]
    fn invariant_under_relabelling() {
        let m = m1();
        let c = CanonicalCode::of(&m);
        // All 24 permutations give the same code.
        let perms = [
            vec![0, 1, 2, 3],
            vec![1, 0, 2, 3],
            vec![2, 3, 0, 1],
            vec![3, 2, 1, 0],
            vec![1, 3, 0, 2],
            vec![2, 0, 3, 1],
        ];
        for p in perms {
            assert_eq!(CanonicalCode::of(&m.permuted(&p)), c, "perm {p:?}");
        }
    }

    #[test]
    fn distinguishes_nonisomorphic() {
        // Path u-a-u vs star is same here; compare path vs "both users tied
        // to the same attr twice" is impossible (simple); use: path u-a-u vs
        // path a-u-a style type flip.
        let p1 = Metagraph::from_edges(&[U, A, U], &[(0, 1), (1, 2)]).unwrap();
        let p2 = Metagraph::from_edges(&[A, U, A], &[(0, 1), (1, 2)]).unwrap();
        assert_ne!(CanonicalCode::of(&p1), CanonicalCode::of(&p2));

        // Same types, different structure: square vs path of 4.
        let square =
            Metagraph::from_edges(&[U, A, U, A], &[(0, 1), (1, 2), (2, 3), (3, 0)]).unwrap();
        let path = Metagraph::from_edges(&[U, A, U, A], &[(0, 1), (1, 2), (2, 3)]).unwrap();
        assert_ne!(CanonicalCode::of(&square), CanonicalCode::of(&path));
    }

    #[test]
    fn roundtrip_through_metagraph() {
        let m = m1();
        let c = CanonicalCode::of(&m);
        let rebuilt = c.to_metagraph();
        assert_eq!(CanonicalCode::of(&rebuilt), c);
        assert_eq!(rebuilt.n_nodes(), m.n_nodes());
        assert_eq!(rebuilt.n_edges(), m.n_edges());
    }

    #[test]
    fn code_length_matches() {
        let c = CanonicalCode::of(&m1());
        assert_eq!(c.n_nodes(), 4);
    }

    #[test]
    fn single_node_and_edge() {
        let n1 = Metagraph::new(&[U]).unwrap();
        let c1 = CanonicalCode::of(&n1);
        assert_eq!(c1.n_nodes(), 1);
        let e = Metagraph::from_edges(&[A, U], &[(0, 1)]).unwrap();
        let e_flipped = Metagraph::from_edges(&[U, A], &[(0, 1)]).unwrap();
        assert_eq!(CanonicalCode::of(&e), CanonicalCode::of(&e_flipped));
    }

    #[test]
    fn triangle_vs_path_same_types() {
        let tri = Metagraph::from_edges(&[U, U, U], &[(0, 1), (1, 2), (0, 2)]).unwrap();
        let path = Metagraph::from_edges(&[U, U, U], &[(0, 1), (1, 2)]).unwrap();
        assert_ne!(CanonicalCode::of(&tri), CanonicalCode::of(&path));
    }

    #[test]
    fn five_node_patterns() {
        // user-attr-user-attr-user chain, relabelled arbitrarily.
        let chain =
            Metagraph::from_edges(&[U, A, U, A, U], &[(0, 1), (1, 2), (2, 3), (3, 4)]).unwrap();
        let shuffled = chain.permuted(&[4, 3, 2, 1, 0]);
        assert_eq!(CanonicalCode::of(&chain), CanonicalCode::of(&shuffled));
        let shuffled2 = chain.permuted(&[2, 1, 0, 3, 4]);
        assert_eq!(CanonicalCode::of(&chain), CanonicalCode::of(&shuffled2));
    }

    #[test]
    fn different_type_multisets_differ() {
        let m_ab = Metagraph::from_edges(&[U, A], &[(0, 1)]).unwrap();
        let m_ub = Metagraph::from_edges(&[U, B], &[(0, 1)]).unwrap();
        assert_ne!(CanonicalCode::of(&m_ab), CanonicalCode::of(&m_ub));
    }
}

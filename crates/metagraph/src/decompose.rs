//! Symmetric-component decomposition of a metagraph (Sect. IV-C).
//!
//! SymISO avoids redundant matching work by decomposing `V_M` into disjoint
//! connected **components** and grouping mutually-symmetric components into
//! **blocks**. Within a block, the candidate matchings of the representative
//! component can be *reused* for its mirrors, and choosing unordered
//! *combinations* of candidate matchings enumerates each instance once per
//! residual symmetry instead of once per embedding.
//!
//! Following the paper:
//! * a node not symmetric to any other node forms a singleton component;
//! * symmetric nodes are partitioned into connected components such that
//!   (i) all nodes of a component have the same number of symmetric
//!   partners, (ii) no two nodes of a component are symmetric to each
//!   other, and (iii) components are grown maximally;
//! * a component `S` is symmetric to `S'` when an automorphism swaps them
//!   **while fixing every node outside `S ∪ S'`** — this pointwise-fixing
//!   condition is what makes candidate reuse sound: a matching of `S`
//!   against any partial assignment `D` is verbatim a matching of `S'`.
//!
//! The paper's simplified metagraph `M⁺` (Fig. 5) corresponds to keeping one
//! representative component per block; here the [`Decomposition`] carries the
//! full block structure instead, which is what the matcher consumes.
//!
//! **Residual symmetry.** Block swaps generate a subgroup `H ≤ Aut(M)` of
//! order `∏_blocks |B|!`. Combination-based enumeration emits exactly one
//! embedding per `H`-coset, i.e. each instance `r = |Aut(M)| / |H|` times.
//! `r = 1` for all metagraphs whose symmetry is "local" (shared-attribute
//! patterns like M1–M5 of the paper); patterns with global symmetries such
//! as a 6-cycle have `r > 1`, which the matcher divides out (or deduplicates
//! when materialising instances). [`Decomposition::residual_factor`] exposes
//! `r`.

use crate::{Automorphisms, Metagraph, SymmetryInfo};
use serde::{Deserialize, Serialize};

/// A connected set of pattern nodes matched as a unit.
///
/// The node order is significant: mirror components list their nodes in
/// correspondence order, so the `j`-th node of every component in a block
/// maps to the `j`-th node of the representative under the block's swap
/// automorphisms.
#[derive(Debug, Clone, PartialEq, Eq, Serialize, Deserialize)]
pub struct Component {
    /// Pattern node indices in correspondence order.
    pub nodes: Vec<u8>,
    /// Bitmask of `nodes`.
    pub mask: u16,
}

impl Component {
    fn new(nodes: Vec<u8>) -> Self {
        let mask = nodes.iter().fold(0u16, |m, &u| m | (1 << u));
        Component { nodes, mask }
    }

    /// Number of nodes in the component.
    pub fn len(&self) -> usize {
        self.nodes.len()
    }

    /// True if the component has no nodes (never produced by decomposition).
    pub fn is_empty(&self) -> bool {
        self.nodes.is_empty()
    }
}

/// A group of mutually symmetric components. `components[0]` is the
/// representative whose candidate matchings are computed; the rest reuse
/// them.
#[derive(Debug, Clone, PartialEq, Eq, Serialize, Deserialize)]
pub struct Block {
    /// The components of the block; all have equal length and positional
    /// correspondence with `components[0]`.
    pub components: Vec<Component>,
}

impl Block {
    /// Number of components in the block.
    pub fn width(&self) -> usize {
        self.components.len()
    }

    /// Union bitmask of all component nodes in the block.
    pub fn mask(&self) -> u16 {
        self.components.iter().fold(0, |m, c| m | c.mask)
    }
}

/// The full decomposition of a metagraph into blocks of symmetric
/// components.
#[derive(Debug, Clone, PartialEq, Eq, Serialize, Deserialize)]
pub struct Decomposition {
    /// Blocks, covering every pattern node exactly once.
    pub blocks: Vec<Block>,
    /// `|Aut(M)|`.
    pub aut_count: usize,
    /// `r = |Aut(M)| / ∏ |B|!` — how many times combination-based
    /// enumeration repeats each instance (usually 1).
    pub residual_factor: usize,
}

impl Decomposition {
    /// Decomposes `m`, computing automorphisms internally.
    pub fn compute(m: &Metagraph) -> Self {
        let auts = Automorphisms::compute(m);
        let info = SymmetryInfo::from_automorphisms(m, &auts);
        Self::from_parts(m, &auts, &info)
    }

    /// Decomposes `m` reusing a pre-computed automorphism group.
    pub fn from_parts(m: &Metagraph, auts: &Automorphisms, info: &SymmetryInfo) -> Self {
        let n = m.n_nodes();
        let mut assigned: u16 = 0;
        let mut blocks: Vec<Block> = Vec::new();

        // Singleton blocks for asymmetric nodes are deferred to the end so
        // that symmetric nodes get the first chance to form wide blocks; the
        // matcher reorders blocks anyway.
        let mut symmetric_nodes: Vec<usize> = (0..n).filter(|&u| info.n_symmetric(u) > 0).collect();
        let asymmetric_nodes: Vec<usize> = (0..n).filter(|&u| info.n_symmetric(u) == 0).collect();

        while let Some(&u) = symmetric_nodes.iter().find(|&&u| assigned & (1 << u) == 0) {
            // Grow a connected component S around u, obeying rules (i)+(ii).
            let grown = grow_component(m, info, u, assigned);
            // Try to find mirrors for the grown S; shrink to {u} on failure.
            let (s, mirrors) = match find_mirrors(m, auts, &grown, assigned) {
                Some(mirrors) => (grown, mirrors),
                None => {
                    let single = vec![u as u8];
                    let mirrors = find_mirrors(m, auts, &single, assigned).unwrap_or_default();
                    (single, mirrors)
                }
            };
            let mut comps = Vec::with_capacity(1 + mirrors.len());
            let rep = Component::new(s);
            assigned |= rep.mask;
            comps.push(rep);
            for mir in mirrors {
                let c = Component::new(mir);
                assigned |= c.mask;
                comps.push(c);
            }
            blocks.push(Block { components: comps });
            symmetric_nodes.retain(|&w| assigned & (1 << w) == 0);
        }

        for u in asymmetric_nodes {
            blocks.push(Block {
                components: vec![Component::new(vec![u as u8])],
            });
        }

        let h_order: usize = blocks.iter().map(|b| factorial(b.width())).product();
        let residual_factor = if h_order == 0 {
            1
        } else {
            auts.count() / h_order.max(1)
        };
        Decomposition {
            blocks,
            aut_count: auts.count(),
            residual_factor: residual_factor.max(1),
        }
    }

    /// Total number of components across all blocks.
    pub fn n_components(&self) -> usize {
        self.blocks.iter().map(Block::width).sum()
    }

    /// Number of pattern nodes covered (sanity: equals `|V_M|`).
    pub fn n_nodes_covered(&self) -> usize {
        self.blocks
            .iter()
            .flat_map(|b| &b.components)
            .map(Component::len)
            .sum()
    }

    /// True if any block has width > 1, i.e. SymISO can reuse work.
    pub fn has_reuse(&self) -> bool {
        self.blocks.iter().any(|b| b.width() > 1)
    }
}

fn factorial(k: usize) -> usize {
    (1..=k).product::<usize>().max(1)
}

/// Grows a connected component around `seed` using the paper's rules:
/// same symmetric-partner count as `seed`, no two members symmetric to each
/// other, connected, and only over unassigned nodes.
fn grow_component(m: &Metagraph, info: &SymmetryInfo, seed: usize, assigned: u16) -> Vec<u8> {
    let want = info.n_symmetric(seed);
    let mut s_mask: u16 = 1 << seed;
    let mut s = vec![seed as u8];
    loop {
        let mut added = false;
        for w in 0..m.n_nodes() {
            let bit = 1u16 << w;
            if s_mask & bit != 0 || assigned & bit != 0 {
                continue;
            }
            if info.n_symmetric(w) != want {
                continue;
            }
            if info.symmetric_mask(w) & s_mask != 0 {
                continue; // symmetric to a member: rule (ii)
            }
            if m.neighbors_mask(w) & s_mask == 0 {
                continue; // not connected to S
            }
            s_mask |= bit;
            s.push(w as u8);
            added = true;
        }
        if !added {
            return s;
        }
    }
}

/// Finds the mirror images of component `s`: for each automorphism `σ` that
/// (a) maps `s` to a disjoint node set, (b) is an involution on `s ∪ σ(s)`,
/// and (c) fixes every node outside `s ∪ σ(s)` pointwise, record `σ(s)` in
/// correspondence order. Returns `None` if `s` has symmetric member nodes
/// whose partners cannot be covered this way *and* `s.len() > 1` (caller
/// then retries with a singleton); returns `Some(vec![])` when there are
/// simply no mirrors.
fn find_mirrors(
    m: &Metagraph,
    auts: &Automorphisms,
    s: &[u8],
    assigned: u16,
) -> Option<Vec<Vec<u8>>> {
    let s_mask: u16 = s.iter().fold(0, |acc, &u| acc | (1 << u));
    let n = m.n_nodes();
    let mut mirrors: Vec<Vec<u8>> = Vec::new();
    let mut seen_masks: Vec<u16> = vec![s_mask];
    for perm in auts.iter() {
        let image_mask: u16 = s.iter().fold(0, |acc, &u| acc | (1 << perm[u as usize]));
        if image_mask & s_mask != 0 {
            continue; // overlaps S (includes identity)
        }
        if image_mask & assigned != 0 {
            continue; // would steal nodes from earlier blocks
        }
        // Involution on S ∪ σ(S): σ(σ(u)) = u for u ∈ S.
        if !s.iter().all(|&u| perm[perm[u as usize] as usize] == u) {
            continue;
        }
        // Fix everything outside S ∪ σ(S).
        let outside_ok = (0..n).all(|w| {
            let bit = 1u16 << w;
            (s_mask | image_mask) & bit != 0 || perm[w] as usize == w
        });
        if !outside_ok {
            continue;
        }
        if seen_masks.contains(&image_mask) {
            continue;
        }
        seen_masks.push(image_mask);
        mirrors.push(s.iter().map(|&u| perm[u as usize]).collect());
    }
    if mirrors.is_empty() && s.len() > 1 {
        // A grown component with no mirror defeats reuse; signal the caller
        // to retry with the bare seed, which more often has a local mirror.
        None
    } else {
        Some(mirrors)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use mgp_graph::TypeId;

    const U: TypeId = TypeId(0);
    const A: TypeId = TypeId(1);
    const B: TypeId = TypeId(2);

    /// M1: two users sharing a school and a major.
    fn m1() -> Metagraph {
        Metagraph::from_edges(&[U, U, A, B], &[(0, 2), (1, 2), (0, 3), (1, 3)]).unwrap()
    }

    /// Fig. 5-style M5: users 0/4 with majors 1/5 as symmetric wings,
    /// shared school 2, middle user 3 (see automorphism tests).
    fn m5() -> Metagraph {
        Metagraph::from_edges(
            &[U, B, A, U, U, B],
            &[(0, 1), (0, 2), (3, 2), (4, 2), (4, 5), (1, 3), (5, 3)],
        )
        .unwrap()
    }

    fn block_masks(d: &Decomposition) -> Vec<Vec<u16>> {
        d.blocks
            .iter()
            .map(|b| b.components.iter().map(|c| c.mask).collect())
            .collect()
    }

    #[test]
    fn covers_all_nodes_exactly_once() {
        for m in [m1(), m5()] {
            let d = Decomposition::compute(&m);
            assert_eq!(d.n_nodes_covered(), m.n_nodes());
            let mut total_mask = 0u16;
            for b in &d.blocks {
                assert_eq!(total_mask & b.mask(), 0, "blocks overlap");
                total_mask |= b.mask();
            }
            assert_eq!(total_mask.count_ones() as usize, m.n_nodes());
        }
    }

    #[test]
    fn m1_users_form_a_width2_block() {
        let d = Decomposition::compute(&m1());
        // Expect: block {{0},{1}} plus singleton blocks {2}, {3}.
        let masks = block_masks(&d);
        assert!(masks.contains(&vec![1 << 0, 1 << 1]) || masks.contains(&vec![1 << 1, 1 << 0]));
        assert!(d.has_reuse());
        assert_eq!(d.aut_count, 2);
        assert_eq!(d.residual_factor, 1);
        assert_eq!(d.n_components(), 4);
    }

    #[test]
    fn m5_wings_form_paired_components() {
        let d = Decomposition::compute(&m5());
        // The wing {0,1} mirrors {4,5}; nodes 2 and 3 are singletons.
        let wide: Vec<&Block> = d.blocks.iter().filter(|b| b.width() == 2).collect();
        assert_eq!(wide.len(), 1);
        let b = wide[0];
        assert_eq!(b.components[0].len(), 2);
        let m01 = (1 << 0) | (1 << 1);
        let m45 = (1 << 4) | (1 << 5);
        let found: Vec<u16> = b.components.iter().map(|c| c.mask).collect();
        assert!(found == vec![m01, m45] || found == vec![m45, m01]);
        // Correspondence order: user maps to user, major to major.
        let m = m5();
        for (i, _) in b.components[0].nodes.iter().enumerate() {
            assert_eq!(
                m.node_type(b.components[0].nodes[i] as usize),
                m.node_type(b.components[1].nodes[i] as usize)
            );
        }
        assert_eq!(d.residual_factor, 1);
    }

    #[test]
    fn asymmetric_pattern_all_singletons() {
        let m = Metagraph::from_edges(&[U, A, B], &[(0, 1), (1, 2)]).unwrap();
        let d = Decomposition::compute(&m);
        assert_eq!(d.blocks.len(), 3);
        assert!(!d.has_reuse());
        assert_eq!(d.residual_factor, 1);
    }

    #[test]
    fn triangle_block_of_three() {
        let m = Metagraph::from_edges(&[U, U, U], &[(0, 1), (1, 2), (0, 2)]).unwrap();
        let d = Decomposition::compute(&m);
        assert_eq!(d.blocks.len(), 1);
        assert_eq!(d.blocks[0].width(), 3);
        // |Aut| = 6, H = 3! = 6 → r = 1.
        assert_eq!(d.residual_factor, 1);
    }

    #[test]
    fn six_cycle_has_residual_symmetry() {
        // u-a-u-a-u-a cycle: Aut order 6 (3 rotations × node-axis
        // reflections), blocks can capture at most a factor of 2.
        let m = Metagraph::from_edges(
            &[U, A, U, A, U, A],
            &[(0, 1), (1, 2), (2, 3), (3, 4), (4, 5), (5, 0)],
        )
        .unwrap();
        let d = Decomposition::compute(&m);
        assert_eq!(d.aut_count, 6);
        assert_eq!(d.n_nodes_covered(), 6);
        let h: usize = d
            .blocks
            .iter()
            .map(|b| (1..=b.width()).product::<usize>())
            .product();
        assert_eq!(d.residual_factor, 6 / h);
        assert!(d.residual_factor >= 1);
    }

    #[test]
    fn metapath_ends_pair_up() {
        // user - addr - user (M3): ends form a width-2 block.
        let m = Metagraph::from_edges(&[U, A, U], &[(0, 1), (1, 2)]).unwrap();
        let d = Decomposition::compute(&m);
        let wide: Vec<&Block> = d.blocks.iter().filter(|b| b.width() == 2).collect();
        assert_eq!(wide.len(), 1);
        assert_eq!(wide[0].components[0].nodes.len(), 1);
        assert_eq!(d.residual_factor, 1);
    }

    #[test]
    fn double_shared_attribute_m2() {
        // M2: user-employer-user + user-hobby-user joint pattern.
        let m = Metagraph::from_edges(&[U, A, B, U], &[(0, 1), (3, 1), (0, 2), (3, 2)]).unwrap();
        let d = Decomposition::compute(&m);
        assert!(d.has_reuse());
        assert_eq!(d.residual_factor, 1);
        assert_eq!(d.n_nodes_covered(), 4);
    }
}

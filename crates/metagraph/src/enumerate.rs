//! Exhaustive metagraph enumeration over a type schema.
//!
//! The miner ([`mgp_mining`](../mgp_mining/index.html)) only surfaces
//! *frequent* patterns of a concrete graph. For small type schemas it is
//! also useful — in tests, completeness checks and analytic experiments —
//! to enumerate **all** connected metagraphs up to a size bound, one per
//! isomorphism class.

use crate::{CanonicalCode, Metagraph, SymmetryInfo};
use mgp_graph::TypeId;
use std::collections::BTreeSet;

/// Enumerates every connected metagraph with at most `max_nodes` nodes over
/// the given types, one representative per isomorphism class, sorted by
/// `(size, canonical code)`.
///
/// The count explodes combinatorially; keep `max_nodes ≤ 5` and the type
/// set small (this mirrors the paper's setting).
pub fn enumerate_connected(types: &[TypeId], max_nodes: usize) -> Vec<Metagraph> {
    let mut seen: BTreeSet<CanonicalCode> = BTreeSet::new();
    let mut frontier: Vec<Metagraph> = Vec::new();
    let mut out: Vec<Metagraph> = Vec::new();

    // Single nodes.
    for &t in types {
        let m = Metagraph::new(&[t]).expect("1 node");
        if seen.insert(CanonicalCode::of(&m)) {
            out.push(m.clone());
            frontier.push(m);
        }
    }

    while !frontier.is_empty() {
        let mut next = Vec::new();
        for base in &frontier {
            // Forward extensions.
            if base.n_nodes() < max_nodes {
                for u in 0..base.n_nodes() {
                    for &t in types {
                        let mut m = base.clone();
                        let v = m.add_node(t).expect("under bound");
                        m.add_edge(u, v).expect("valid");
                        if seen.insert(CanonicalCode::of(&m)) {
                            out.push(m.clone());
                            next.push(m);
                        }
                    }
                }
            }
            // Backward (cycle-closing) extensions.
            for u in 0..base.n_nodes() {
                for v in (u + 1)..base.n_nodes() {
                    if !base.has_edge(u, v) {
                        let mut m = base.clone();
                        m.add_edge(u, v).expect("valid");
                        if seen.insert(CanonicalCode::of(&m)) {
                            out.push(m.clone());
                            next.push(m);
                        }
                    }
                }
            }
        }
        frontier = next;
    }

    out.sort_by_key(|m| (m.n_nodes(), CanonicalCode::of(m)));
    out
}

/// Like [`enumerate_connected`], filtered to the patterns admissible for
/// anchor proximity (the paper's Sect. V-A constraints): ≥ `min_anchors`
/// anchor nodes, ≥ 1 non-anchor node, and a symmetric anchor pair.
pub fn enumerate_proximity_patterns(
    types: &[TypeId],
    max_nodes: usize,
    anchor: TypeId,
    min_anchors: usize,
) -> Vec<Metagraph> {
    enumerate_connected(types, max_nodes)
        .into_iter()
        .filter(|m| {
            let anchors = m.count_type(anchor);
            anchors >= min_anchors
                && anchors < m.n_nodes()
                && !SymmetryInfo::compute(m).anchor_pairs(m, anchor).is_empty()
        })
        .collect()
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::is_metapath;

    const U: TypeId = TypeId(0);
    const A: TypeId = TypeId(1);

    #[test]
    fn single_type_counts() {
        // Connected graphs on one type, sizes 1..=3, up to isomorphism:
        // 1 node; 1 edge; path P3 + triangle = 2. Total 4.
        let all = enumerate_connected(&[U], 3);
        assert_eq!(all.len(), 4);
        assert!(all.iter().all(|m| m.is_connected()));
    }

    #[test]
    fn two_types_size_two() {
        // Size ≤ 2 over {U, A}: nodes U, A; edges U-U, U-A, A-A. Total 5.
        let all = enumerate_connected(&[U, A], 2);
        assert_eq!(all.len(), 5);
    }

    #[test]
    fn no_duplicates_and_all_connected() {
        let all = enumerate_connected(&[U, A], 4);
        let mut codes = BTreeSet::new();
        for m in &all {
            assert!(m.is_connected());
            assert!(m.n_nodes() <= 4);
            assert!(codes.insert(CanonicalCode::of(m)), "dup: {}", m.brief());
        }
        // Paths are a strict minority even at this size.
        let paths = all.iter().filter(|m| is_metapath(m)).count();
        assert!(paths > 0 && paths < all.len());
    }

    #[test]
    fn proximity_filter() {
        let pats = enumerate_proximity_patterns(&[U, A], 4, U, 2);
        assert!(!pats.is_empty());
        for m in &pats {
            assert!(m.count_type(U) >= 2);
            assert!(m.count_type(U) < m.n_nodes());
            let info = SymmetryInfo::compute(m);
            assert!(!info.anchor_pairs(m, U).is_empty());
        }
        // The classic user-A-user metapath must be present.
        assert!(pats
            .iter()
            .any(|m| m.n_nodes() == 3 && is_metapath(m) && m.count_type(A) == 1));
    }

    #[test]
    fn monotone_in_max_nodes() {
        let small = enumerate_connected(&[U, A], 3);
        let large = enumerate_connected(&[U, A], 4);
        assert!(large.len() > small.len());
        let small_codes: BTreeSet<_> = small.iter().map(CanonicalCode::of).collect();
        let large_codes: BTreeSet<_> = large.iter().map(CanonicalCode::of).collect();
        assert!(small_codes.is_subset(&large_codes));
    }
}

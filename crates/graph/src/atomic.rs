//! Crash-safe file replacement: write to a temporary file in the target
//! directory, flush it to stable storage, then atomically rename over the
//! destination. A crash at any point leaves either the old file or the new
//! one at `path` — never a truncated mix. Shared by the graph binary codec
//! ([`crate::binary::save_binary`]) and the snapshot writer in
//! `mgp-persist`.

use std::fs::File;
use std::io::{self, Write};
use std::path::Path;
use std::sync::atomic::{AtomicU64, Ordering};

/// Monotonic discriminator so concurrent writers in one process never
/// collide on a temp name (the pid distinguishes processes).
static TEMP_SEQ: AtomicU64 = AtomicU64::new(0);

/// Writes `bytes` to `path` atomically: temp file in the same directory,
/// `fsync`, rename, then (on unix) `fsync` of the directory so the rename
/// itself is durable. The temp file is removed on any failure.
pub fn atomic_write(path: impl AsRef<Path>, bytes: &[u8]) -> io::Result<()> {
    let path = path.as_ref();
    let dir = path.parent().filter(|p| !p.as_os_str().is_empty());
    let file_name = path
        .file_name()
        .ok_or_else(|| io::Error::new(io::ErrorKind::InvalidInput, "path has no file name"))?;
    let seq = TEMP_SEQ.fetch_add(1, Ordering::Relaxed);
    let tmp_name = format!(
        ".{}.tmp.{}.{}",
        file_name.to_string_lossy(),
        std::process::id(),
        seq
    );
    let tmp = match dir {
        Some(d) => d.join(&tmp_name),
        None => Path::new(&tmp_name).to_path_buf(),
    };

    let write_all = || -> io::Result<()> {
        let mut f = File::create(&tmp)?;
        f.write_all(bytes)?;
        // Data must hit the disk before the rename publishes it, or a
        // crash could surface the new name with missing contents.
        f.sync_all()?;
        std::fs::rename(&tmp, path)?;
        Ok(())
    };
    if let Err(e) = write_all() {
        let _ = std::fs::remove_file(&tmp);
        return Err(e);
    }

    // Make the rename durable: without the directory fsync a power loss
    // can roll back to the old file, which is safe but not persistent.
    #[cfg(unix)]
    if let Some(d) = dir {
        if let Ok(dirf) = File::open(d) {
            let _ = dirf.sync_all();
        }
    }
    Ok(())
}

#[cfg(test)]
mod tests {
    use super::*;

    fn tmp_dir(tag: &str) -> std::path::PathBuf {
        let dir = std::env::temp_dir().join(format!("mgp_atomic_{tag}_{}", std::process::id()));
        std::fs::create_dir_all(&dir).unwrap();
        dir
    }

    #[test]
    fn writes_and_replaces() {
        let dir = tmp_dir("replace");
        let path = dir.join("f.bin");
        atomic_write(&path, b"first").unwrap();
        assert_eq!(std::fs::read(&path).unwrap(), b"first");
        atomic_write(&path, b"second, longer contents").unwrap();
        assert_eq!(std::fs::read(&path).unwrap(), b"second, longer contents");
        std::fs::remove_dir_all(&dir).ok();
    }

    #[test]
    fn leaves_no_temp_litter() {
        let dir = tmp_dir("litter");
        let path = dir.join("f.bin");
        atomic_write(&path, b"x").unwrap();
        let extras: Vec<_> = std::fs::read_dir(&dir)
            .unwrap()
            .map(|e| e.unwrap().file_name())
            .filter(|n| n != "f.bin")
            .collect();
        assert!(extras.is_empty(), "temp litter: {extras:?}");
        std::fs::remove_dir_all(&dir).ok();
    }

    #[test]
    fn failure_cleans_up_temp() {
        let dir = tmp_dir("fail");
        // Destination is a directory, so the final rename must fail — and
        // the temp file must be gone afterwards.
        let path = dir.join("sub");
        std::fs::create_dir_all(&path).unwrap();
        assert!(atomic_write(&path, b"x").is_err());
        let extras: Vec<_> = std::fs::read_dir(&dir)
            .unwrap()
            .map(|e| e.unwrap().file_name())
            .filter(|n| n != "sub")
            .collect();
        assert!(extras.is_empty(), "temp litter: {extras:?}");
        std::fs::remove_dir_all(&dir).ok();
    }
}

//! Sorted-set intersection kernels for the worst-case-optimal delta
//! matcher.
//!
//! The CSR graph keeps every adjacency list sorted by `(type, id)`, so a
//! typed neighbour range ([`crate::Graph::neighbors_of_type`]) is a
//! plain ascending-id slice. The propose/intersect extension discipline
//! in `mgp-matching::wcoj` builds each level's candidate set by
//! intersecting several such slices: the smallest slice *proposes* and
//! the rest are intersected against it. These kernels are that inner
//! loop.
//!
//! Two strategies, one dispatcher:
//!
//! * [`intersect_merge`] — the classic two-pointer merge, `O(|a| + |b|)`.
//!   Optimal when the inputs are of comparable length.
//! * [`intersect_gallop`] — for each element of the short side, gallop
//!   (exponential probe, then binary search) into the long side:
//!   `O(|a| · log |b|)`. Wins when one side is much shorter — exactly
//!   the hub case, where a candidate set of a handful of ids is pruned
//!   against a 10³-entry adjacency slice.
//! * [`intersect_into`] — picks between them by the length ratio
//!   [`GALLOP_RATIO`].
//!
//! All kernels require **ascending** input order (equal runs are
//! tolerated: an element appears in the output at the minimum of its
//! multiplicities, standard sorted-multiset intersection) and produce
//! ascending output. Empty slices — e.g. the adjacency of a tombstoned
//! (fully detached) node — short-circuit to an empty result.

use crate::NodeId;

/// Length ratio beyond which [`intersect_into`] switches from the
/// two-pointer merge to galloping search.
///
/// Galloping costs ~`2·log₂(gap)` comparisons per short-side element
/// versus ~`gap` for the merge walk, so it pays once the long side is
/// a few dozen times longer; 32 is the conventional crossover (cf.
/// timsort's galloping mode) and is validated by this module's
/// crossover unit test rather than tuned per machine.
pub const GALLOP_RATIO: usize = 32;

/// Two-pointer merge intersection of two ascending slices, appending
/// matches to `out`. `O(|a| + |b|)` comparisons.
pub fn intersect_merge(a: &[NodeId], b: &[NodeId], out: &mut Vec<NodeId>) {
    let (mut i, mut j) = (0, 0);
    while i < a.len() && j < b.len() {
        match a[i].cmp(&b[j]) {
            std::cmp::Ordering::Less => i += 1,
            std::cmp::Ordering::Greater => j += 1,
            std::cmp::Ordering::Equal => {
                out.push(a[i]);
                i += 1;
                j += 1;
            }
        }
    }
}

/// Galloping intersection: for each element of the (shorter) slice `a`,
/// exponentially probe forward in `b` and binary-search the bracketed
/// window. `O(|a| · log |b|)`; ascending matches appended to `out`.
///
/// `b` is consumed monotonically, so equal runs in `a` still emit at
/// most the multiplicity present in `b`.
pub fn intersect_gallop(a: &[NodeId], b: &[NodeId], out: &mut Vec<NodeId>) {
    let mut lo = 0usize;
    for &x in a {
        if lo >= b.len() {
            break;
        }
        // Gallop: find the first window (lo + step/2, lo + step] whose
        // upper bound reaches x.
        let mut step = 1usize;
        while lo + step < b.len() && b[lo + step] < x {
            step <<= 1;
        }
        let hi = (lo + step + 1).min(b.len());
        // First element ≥ x inside the bracketed window (partition_point,
        // not binary_search: with equal runs the latter lands on an
        // arbitrary duplicate, which would over-consume `b` and break the
        // min-multiplicity contract).
        let win = &b[lo..hi];
        let k = win.partition_point(|&y| y < x);
        if k < win.len() && win[k] == x {
            out.push(x);
            lo += k + 1;
        } else {
            lo += k;
        }
    }
}

/// Intersects two ascending slices into `out`, dispatching on the
/// length ratio: merge for comparable lengths, galloping with the
/// shorter side as the probe once the ratio exceeds [`GALLOP_RATIO`].
pub fn intersect_into(a: &[NodeId], b: &[NodeId], out: &mut Vec<NodeId>) {
    if a.is_empty() || b.is_empty() {
        return;
    }
    let (short, long) = if a.len() <= b.len() { (a, b) } else { (b, a) };
    if long.len() / short.len() >= GALLOP_RATIO {
        intersect_gallop(short, long, out);
    } else {
        intersect_merge(short, long, out);
    }
}

/// Membership probe in an ascending slice — binary search, `O(log n)`.
/// The single-element degenerate case of the kernels above; the wcoj
/// matcher uses it to check one candidate against one adjacency slice
/// without materialising an intersection.
#[inline]
pub fn contains_sorted(slice: &[NodeId], x: NodeId) -> bool {
    slice.binary_search(&x).is_ok()
}

#[cfg(test)]
mod tests {
    use super::*;

    fn ids(v: &[u32]) -> Vec<NodeId> {
        v.iter().map(|&x| NodeId(x)).collect()
    }

    fn run(f: fn(&[NodeId], &[NodeId], &mut Vec<NodeId>), a: &[u32], b: &[u32]) -> Vec<u32> {
        let mut out = Vec::new();
        f(&ids(a), &ids(b), &mut out);
        out.into_iter().map(|n| n.0).collect()
    }

    #[test]
    fn merge_and_gallop_agree_on_basics() {
        for f in [
            intersect_merge as fn(&[NodeId], &[NodeId], &mut Vec<NodeId>),
            intersect_gallop,
            intersect_into,
        ] {
            assert_eq!(run(f, &[1, 3, 5, 7], &[2, 3, 4, 7, 9]), vec![3, 7]);
            assert_eq!(run(f, &[1, 2, 3], &[4, 5, 6]), Vec::<u32>::new());
            assert_eq!(run(f, &[2, 4, 6], &[2, 4, 6]), vec![2, 4, 6]);
            assert_eq!(run(f, &[5], &[1, 5, 9]), vec![5]);
        }
    }

    #[test]
    fn empty_inputs_tombstoned_adjacency() {
        // A tombstoned (detached) node contributes an empty adjacency
        // slice; every kernel must short-circuit to an empty result.
        for f in [
            intersect_merge as fn(&[NodeId], &[NodeId], &mut Vec<NodeId>),
            intersect_gallop,
            intersect_into,
        ] {
            assert_eq!(run(f, &[], &[1, 2, 3]), Vec::<u32>::new());
            assert_eq!(run(f, &[1, 2, 3], &[]), Vec::<u32>::new());
            assert_eq!(run(f, &[], &[]), Vec::<u32>::new());
        }
    }

    #[test]
    fn duplicates_emit_min_multiplicity() {
        // Ascending-with-duplicates inputs: standard multiset
        // intersection — each value appears min(multiplicity) times.
        assert_eq!(
            run(intersect_merge, &[1, 1, 2, 2, 2], &[1, 2, 2, 3]),
            vec![1, 2, 2]
        );
        assert_eq!(
            run(intersect_gallop, &[1, 1, 2, 2, 2], &[1, 2, 2, 3]),
            vec![1, 2, 2]
        );
    }

    #[test]
    fn gallop_appends_in_order_and_respects_monotonic_consumption() {
        // Probe side strictly inside a long haystack; output stays
        // ascending and never revisits consumed prefix.
        let long: Vec<u32> = (0..4096).step_by(3).collect();
        let probe = [3u32, 9, 10, 300, 3000, 4095];
        let got = run(intersect_gallop, &probe, &long);
        assert_eq!(got, vec![3, 9, 300, 3000, 4095]);
    }

    /// Randomised agreement: merge, gallop (both probe directions), and
    /// the dispatcher all compute the same intersection as a naive
    /// reference, across length ratios straddling the crossover.
    #[test]
    fn kernels_agree_with_reference_across_crossover() {
        // Deterministic LCG so the test needs no RNG dependency.
        let mut state = 0x9e37_79b9u64;
        let mut next = move |m: u32| {
            state = state
                .wrapping_mul(6364136223846793005)
                .wrapping_add(1442695040888963407);
            ((state >> 33) as u32) % m
        };
        for &(na, nb) in &[
            (0, 50),
            (1, 1),
            (8, 8),
            (10, 200),
            (5, 400),
            (3, 4000),
            (64, 64),
        ] {
            let mut a: Vec<u32> = (0..na).map(|_| next(1000)).collect();
            let mut b: Vec<u32> = (0..nb).map(|_| next(1000)).collect();
            a.sort_unstable();
            a.dedup();
            b.sort_unstable();
            b.dedup();
            let reference: Vec<u32> = a.iter().copied().filter(|x| b.contains(x)).collect();
            assert_eq!(run(intersect_merge, &a, &b), reference);
            assert_eq!(run(intersect_merge, &b, &a), reference);
            assert_eq!(run(intersect_gallop, &a, &b), reference);
            assert_eq!(run(intersect_into, &a, &b), reference);
            assert_eq!(run(intersect_into, &b, &a), reference);
        }
    }

    /// The dispatcher's crossover: ratios below [`GALLOP_RATIO`] take
    /// the merge path, ratios at/above it take the galloping path. We
    /// can't observe the branch directly, so pin the dispatch rule's
    /// arithmetic and check both paths produce identical output at the
    /// boundary.
    #[test]
    fn crossover_boundary() {
        let short: Vec<u32> = (0..4).map(|x| x * 100).collect();
        // Exactly at the ratio: 4 * 32 = 128 elements.
        let long: Vec<u32> = (0..(4 * GALLOP_RATIO as u32)).collect();
        assert!(long.len() / short.len() >= GALLOP_RATIO);
        let merged = run(intersect_merge, &short, &long);
        let galloped = run(intersect_gallop, &short, &long);
        let dispatched = run(intersect_into, &short, &long);
        assert_eq!(merged, galloped);
        assert_eq!(dispatched, merged);
        // Just below the ratio the dispatcher merges; results identical.
        let long_small: Vec<u32> = (0..(4 * GALLOP_RATIO as u32 - 4)).collect();
        assert!(long_small.len() / short.len() < GALLOP_RATIO);
        assert_eq!(
            run(intersect_into, &short, &long_small),
            run(intersect_merge, &short, &long_small)
        );
    }

    #[test]
    fn contains_sorted_probe() {
        let s = ids(&[2, 4, 8, 16]);
        assert!(contains_sorted(&s, NodeId(8)));
        assert!(!contains_sorted(&s, NodeId(7)));
        assert!(!contains_sorted(&[], NodeId(0)));
    }
}

//! # mgp-graph — typed object graph substrate
//!
//! This crate implements the *typed object graph* `G = (V, E)` of Fang et al.
//! (ICDE 2016, Sect. II-A): an undirected heterogeneous graph where every
//! node carries an object *type* drawn from a type set `T` via a type mapping
//! `τ : V → T`. On the paper's toy social network (Fig. 1) the types are
//! `user`, `school`, `major`, and so on, and each user or attribute value is
//! a node.
//!
//! The central structure is [`Graph`], an immutable compressed-sparse-row
//! (CSR) graph optimised for the access patterns of metagraph matching:
//!
//! * O(1) neighbour slices ([`Graph::neighbors`]),
//! * O(log d) edge tests ([`Graph::has_edge`]) via sorted adjacency,
//! * per-type node lists ([`Graph::nodes_of_type`]) for seeding matches,
//! * typed-neighbour ranges ([`Graph::neighbors_of_type`]) so a matcher can
//!   jump straight to, say, the `school` neighbours of a `user` node,
//! * per-edge-type-pair statistics ([`Graph::edge_type_count`]) used by the
//!   matching-order heuristic of Sect. IV-C.
//!
//! Graphs are constructed through [`GraphBuilder`] and can be persisted in a
//! simple TSV format ([`io`]) or via serde.
//!
//! The crate also hosts [`fxhash`], a small FxHash-style hasher used across
//! the workspace for hot integer-keyed maps (std's SipHash is needlessly slow
//! for `u32`/`u64` keys on this workload).

#![warn(missing_docs)]

pub mod atomic;
pub mod binary;
pub mod builder;
pub mod csr;
pub mod delta;
pub mod fxhash;
pub mod ids;
pub mod intersect;
pub mod io;
pub mod stats;
pub mod types;

pub use atomic::atomic_write;
pub use builder::GraphBuilder;
pub use bytes;
pub use csr::Graph;
pub use delta::{GraphDelta, GraphExtension};
pub use fxhash::{FxHashMap, FxHashSet};
pub use ids::{NodeId, TypeId};
pub use intersect::{contains_sorted, intersect_gallop, intersect_into, intersect_merge};
pub use stats::GraphStats;
pub use types::TypeRegistry;

/// Error type for graph construction and I/O.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum GraphError {
    /// A node id referenced by an edge or query does not exist.
    UnknownNode(u32),
    /// A type id referenced does not exist in the registry.
    UnknownType(u16),
    /// A type name was not found in the registry.
    UnknownTypeName(String),
    /// A self-loop was supplied; the object graph is simple.
    SelfLoop(u32),
    /// Parse failure while loading a graph from text.
    Parse {
        /// 1-based line number of the offending input line.
        line: usize,
        /// Explanation of what failed to parse.
        message: String,
    },
    /// Underlying I/O error (stringified so the error stays `Clone + Eq`).
    Io(String),
    /// A dimension exceeds what a binary encoding can represent — the
    /// encoder refuses rather than silently truncating the count and
    /// producing a file that decodes to a *different* graph.
    TooLarge {
        /// What overflowed (e.g. `"type count"`).
        what: String,
        /// The actual value.
        value: u64,
        /// The largest encodable value.
        max: u64,
    },
}

impl std::fmt::Display for GraphError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            GraphError::UnknownNode(n) => write!(f, "unknown node id {n}"),
            GraphError::UnknownType(t) => write!(f, "unknown type id {t}"),
            GraphError::UnknownTypeName(t) => write!(f, "unknown type name {t:?}"),
            GraphError::SelfLoop(n) => {
                write!(f, "self-loop on node {n} (object graphs are simple)")
            }
            GraphError::Parse { line, message } => {
                write!(f, "parse error at line {line}: {message}")
            }
            GraphError::Io(e) => write!(f, "i/o error: {e}"),
            GraphError::TooLarge { what, value, max } => {
                write!(f, "{what} {value} exceeds encodable maximum {max}")
            }
        }
    }
}

impl std::error::Error for GraphError {}

impl From<std::io::Error> for GraphError {
    fn from(e: std::io::Error) -> Self {
        GraphError::Io(e.to_string())
    }
}

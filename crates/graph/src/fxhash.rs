//! A small FxHash-style hasher for hot integer-keyed maps.
//!
//! The default std hasher (SipHash 1-3) is HashDoS-resistant but slow for the
//! short integer keys that dominate this workload (node ids, packed node
//! pairs, canonical codes). This is the multiply-xor scheme popularised by
//! rustc's `FxHasher`, hand-rolled here to avoid an extra dependency — the
//! approved crate list does not include `rustc-hash`.
//!
//! Inputs are attacker-free (we hash our own dense ids), so DoS resistance is
//! not a concern.

use std::hash::{BuildHasherDefault, Hasher};

/// 64-bit Fx multiply constant (derived from the golden ratio).
const SEED: u64 = 0x51_7c_c1_b7_27_22_0a_95;

/// Multiply-xor hasher; state is a single u64.
#[derive(Debug, Clone, Copy, Default)]
pub struct FxHasher {
    hash: u64,
}

impl FxHasher {
    #[inline(always)]
    fn add_to_hash(&mut self, i: u64) {
        self.hash = (self.hash.rotate_left(5) ^ i).wrapping_mul(SEED);
    }
}

impl Hasher for FxHasher {
    #[inline(always)]
    fn finish(&self) -> u64 {
        self.hash
    }

    #[inline]
    fn write(&mut self, bytes: &[u8]) {
        // Consume 8 bytes at a time, then the tail.
        let mut chunks = bytes.chunks_exact(8);
        for c in &mut chunks {
            self.add_to_hash(u64::from_le_bytes(c.try_into().unwrap()));
        }
        let rem = chunks.remainder();
        if !rem.is_empty() {
            let mut buf = [0u8; 8];
            buf[..rem.len()].copy_from_slice(rem);
            self.add_to_hash(u64::from_le_bytes(buf));
        }
    }

    #[inline(always)]
    fn write_u8(&mut self, i: u8) {
        self.add_to_hash(i as u64);
    }

    #[inline(always)]
    fn write_u16(&mut self, i: u16) {
        self.add_to_hash(i as u64);
    }

    #[inline(always)]
    fn write_u32(&mut self, i: u32) {
        self.add_to_hash(i as u64);
    }

    #[inline(always)]
    fn write_u64(&mut self, i: u64) {
        self.add_to_hash(i);
    }

    #[inline(always)]
    fn write_usize(&mut self, i: usize) {
        self.add_to_hash(i as u64);
    }
}

/// `HashMap` keyed with [`FxHasher`].
pub type FxHashMap<K, V> = std::collections::HashMap<K, V, BuildHasherDefault<FxHasher>>;

/// `HashSet` keyed with [`FxHasher`].
pub type FxHashSet<K> = std::collections::HashSet<K, BuildHasherDefault<FxHasher>>;

/// Convenience constructor: an empty [`FxHashMap`].
pub fn fx_map<K, V>() -> FxHashMap<K, V> {
    FxHashMap::default()
}

/// Convenience constructor: an empty [`FxHashMap`] with capacity.
pub fn fx_map_with_capacity<K, V>(cap: usize) -> FxHashMap<K, V> {
    FxHashMap::with_capacity_and_hasher(cap, BuildHasherDefault::default())
}

/// Convenience constructor: an empty [`FxHashSet`].
pub fn fx_set<K>() -> FxHashSet<K> {
    FxHashSet::default()
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::hash::{BuildHasher, BuildHasherDefault};

    fn hash_one<T: std::hash::Hash>(v: T) -> u64 {
        BuildHasherDefault::<FxHasher>::default().hash_one(v)
    }

    #[test]
    fn deterministic() {
        assert_eq!(hash_one(42u64), hash_one(42u64));
        assert_eq!(hash_one("abc"), hash_one("abc"));
    }

    #[test]
    fn distinguishes_values() {
        assert_ne!(hash_one(1u64), hash_one(2u64));
        assert_ne!(hash_one((1u32, 2u32)), hash_one((2u32, 1u32)));
    }

    #[test]
    fn map_basics() {
        let mut m: FxHashMap<u64, u32> = fx_map();
        for i in 0..1000u64 {
            m.insert(i, (i * 2) as u32);
        }
        assert_eq!(m.len(), 1000);
        assert_eq!(m[&500], 1000);
        let mut s: FxHashSet<u32> = fx_set();
        s.insert(7);
        assert!(s.contains(&7));
    }

    #[test]
    fn byte_stream_tail_handling() {
        // Ensure write() handles non-multiple-of-8 inputs distinctly.
        assert_ne!(hash_one([1u8, 2, 3]), hash_one([1u8, 2, 3, 0]));
    }

    #[test]
    fn capacity_constructor() {
        let m: FxHashMap<u32, u32> = fx_map_with_capacity(64);
        assert!(m.capacity() >= 64);
    }
}

//! The type registry: a bidirectional mapping between human-readable type
//! names (`"user"`, `"school"`, …) and dense [`TypeId`]s.

use crate::{GraphError, TypeId};
use serde::{Deserialize, Serialize};
use std::collections::HashMap;

/// Registry of object types `T` with interning of type names.
///
/// Type ids are handed out densely in insertion order, so they can index
/// per-type arrays directly.
///
/// ```
/// use mgp_graph::TypeRegistry;
/// let mut reg = TypeRegistry::new();
/// let user = reg.intern("user");
/// let school = reg.intern("school");
/// assert_ne!(user, school);
/// assert_eq!(reg.intern("user"), user);        // idempotent
/// assert_eq!(reg.name(user), Some("user"));
/// assert_eq!(reg.id("school"), Some(school));
/// assert_eq!(reg.len(), 2);
/// ```
#[derive(Debug, Clone, Default, PartialEq, Eq, Serialize, Deserialize)]
pub struct TypeRegistry {
    names: Vec<String>,
    #[serde(skip)]
    by_name: HashMap<String, TypeId>,
}

impl TypeRegistry {
    /// Creates an empty registry.
    pub fn new() -> Self {
        Self::default()
    }

    /// Interns a type name, returning its id (existing or fresh).
    ///
    /// # Panics
    /// Panics if more than `u16::MAX` types are interned; heterogeneous
    /// graphs in this domain have at most dozens of types.
    pub fn intern(&mut self, name: &str) -> TypeId {
        if let Some(&id) = self.by_name.get(name) {
            return id;
        }
        let id = TypeId(u16::try_from(self.names.len()).expect("too many types"));
        self.names.push(name.to_owned());
        self.by_name.insert(name.to_owned(), id);
        id
    }

    /// Looks up a type id by name.
    pub fn id(&self, name: &str) -> Option<TypeId> {
        self.by_name.get(name).copied()
    }

    /// Looks up a type id by name, returning a [`GraphError`] if missing.
    pub fn require(&self, name: &str) -> Result<TypeId, GraphError> {
        self.id(name)
            .ok_or_else(|| GraphError::UnknownTypeName(name.to_owned()))
    }

    /// The name of a type id, if it exists.
    pub fn name(&self, id: TypeId) -> Option<&str> {
        self.names.get(id.index()).map(String::as_str)
    }

    /// Number of registered types.
    pub fn len(&self) -> usize {
        self.names.len()
    }

    /// True if no types are registered.
    pub fn is_empty(&self) -> bool {
        self.names.is_empty()
    }

    /// Iterates over `(TypeId, name)` pairs in id order.
    pub fn iter(&self) -> impl Iterator<Item = (TypeId, &str)> {
        self.names
            .iter()
            .enumerate()
            .map(|(i, n)| (TypeId(i as u16), n.as_str()))
    }

    /// Rebuilds the name→id map; must be called after deserialisation
    /// (the map is `#[serde(skip)]` to avoid storing it twice).
    pub fn rebuild_lookup(&mut self) {
        self.by_name = self
            .names
            .iter()
            .enumerate()
            .map(|(i, n)| (n.clone(), TypeId(i as u16)))
            .collect();
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn intern_and_lookup() {
        let mut reg = TypeRegistry::new();
        let a = reg.intern("user");
        let b = reg.intern("school");
        let a2 = reg.intern("user");
        assert_eq!(a, a2);
        assert_ne!(a, b);
        assert_eq!(reg.name(a), Some("user"));
        assert_eq!(reg.id("school"), Some(b));
        assert_eq!(reg.id("missing"), None);
        assert_eq!(reg.len(), 2);
        assert!(!reg.is_empty());
    }

    #[test]
    fn require_reports_missing() {
        let reg = TypeRegistry::new();
        assert!(matches!(
            reg.require("nope"),
            Err(GraphError::UnknownTypeName(_))
        ));
    }

    #[test]
    fn ids_are_dense_in_insertion_order() {
        let mut reg = TypeRegistry::new();
        for (i, name) in ["a", "b", "c", "d"].iter().enumerate() {
            assert_eq!(reg.intern(name), TypeId(i as u16));
        }
        let collected: Vec<_> = reg.iter().map(|(id, n)| (id.0, n.to_owned())).collect();
        assert_eq!(
            collected,
            vec![
                (0, "a".to_owned()),
                (1, "b".to_owned()),
                (2, "c".to_owned()),
                (3, "d".to_owned())
            ]
        );
    }

    #[test]
    fn serde_roundtrip_rebuilds_lookup() {
        let mut reg = TypeRegistry::new();
        reg.intern("user");
        reg.intern("employer");
        let json = serde_json::to_string(&reg).unwrap();
        let mut back: TypeRegistry = serde_json::from_str(&json).unwrap();
        assert_eq!(back.id("user"), None); // lookup not yet rebuilt
        back.rebuild_lookup();
        assert_eq!(back.id("user"), Some(TypeId(0)));
        assert_eq!(back.id("employer"), Some(TypeId(1)));
    }
}

//! The immutable CSR typed object graph.

use crate::{NodeId, TypeId, TypeRegistry};
use serde::{Deserialize, Serialize};

/// An immutable, undirected, typed object graph in compressed-sparse-row form.
///
/// This is the substrate `G = (V, E)` with type mapping `τ` from Sect. II-A
/// of the paper. Built via [`crate::GraphBuilder`]; see the crate docs for
/// the supported access patterns.
///
/// # Representation
///
/// * `offsets[v] .. offsets[v+1]` delimits `v`'s adjacency in `adjacency`.
/// * Each node's adjacency is sorted by `(τ(neighbor), neighbor)`, so the
///   neighbours of a given type form a contiguous subslice and edge tests
///   are binary searches.
/// * `type_nodes` / `type_offsets` is a second CSR over types: all node ids
///   of a type, used to seed subgraph matching.
/// * `edge_type_counts` is a dense `|T| × |T|` matrix of edge counts per
///   unordered type pair, feeding the matching-order heuristic (Sect. IV-C).
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct Graph {
    // Fields are crate-visible so the incremental extension path
    // (`crate::delta`) can splice new adjacency in without a full rebuild.
    pub(crate) types: TypeRegistry,
    pub(crate) node_types: Vec<TypeId>,
    pub(crate) labels: Vec<String>,
    pub(crate) offsets: Vec<u32>,
    pub(crate) adjacency: Vec<NodeId>,
    pub(crate) type_offsets: Vec<u32>,
    pub(crate) type_nodes: Vec<NodeId>,
    pub(crate) edge_type_counts: Vec<u64>,
    pub(crate) n_edges: u64,
}

impl Graph {
    /// Assembles a graph from parts. `edges` must be deduplicated, each pair
    /// `(a, b)` with `a < b`, and all endpoints in range. Callers normally go
    /// through [`crate::GraphBuilder`].
    pub(crate) fn from_parts(
        types: TypeRegistry,
        node_types: Vec<TypeId>,
        labels: Vec<String>,
        edges: &[(NodeId, NodeId)],
    ) -> Self {
        let n = node_types.len();
        let t = types.len().max(1);

        // Degree pass.
        let mut offsets = vec![0u32; n + 1];
        for &(a, b) in edges {
            offsets[a.index() + 1] += 1;
            offsets[b.index() + 1] += 1;
        }
        for i in 0..n {
            offsets[i + 1] += offsets[i];
        }

        // Fill pass.
        let mut adjacency = vec![NodeId(0); offsets[n] as usize];
        let mut cursor = offsets.clone();
        for &(a, b) in edges {
            adjacency[cursor[a.index()] as usize] = b;
            cursor[a.index()] += 1;
            adjacency[cursor[b.index()] as usize] = a;
            cursor[b.index()] += 1;
        }

        // Sort each adjacency list by (type, id) so type subranges are
        // contiguous and membership is a binary search.
        for v in 0..n {
            let (s, e) = (offsets[v] as usize, offsets[v + 1] as usize);
            adjacency[s..e].sort_unstable_by_key(|&u| (node_types[u.index()], u));
        }

        // Per-type node lists.
        let mut type_offsets = vec![0u32; t + 1];
        for &ty in &node_types {
            type_offsets[ty.index() + 1] += 1;
        }
        for i in 0..t {
            type_offsets[i + 1] += type_offsets[i];
        }
        let mut type_nodes = vec![NodeId(0); n];
        let mut tcursor = type_offsets.clone();
        for (v, &ty) in node_types.iter().enumerate() {
            type_nodes[tcursor[ty.index()] as usize] = NodeId(v as u32);
            tcursor[ty.index()] += 1;
        }
        // Node ids within a type are emitted in increasing order already.

        // Edge-type-pair statistics (unordered; diagonal counted once).
        let mut edge_type_counts = vec![0u64; t * t];
        for &(a, b) in edges {
            let (ta, tb) = (node_types[a.index()], node_types[b.index()]);
            let (lo, hi) = if ta <= tb { (ta, tb) } else { (tb, ta) };
            edge_type_counts[lo.index() * t + hi.index()] += 1;
        }

        Graph {
            types,
            node_types,
            labels,
            offsets,
            adjacency,
            type_offsets,
            type_nodes,
            edge_type_counts,
            n_edges: edges.len() as u64,
        }
    }

    /// Number of nodes `|V|`.
    #[inline]
    pub fn n_nodes(&self) -> usize {
        self.node_types.len()
    }

    /// Number of undirected edges `|E|`.
    #[inline]
    pub fn n_edges(&self) -> u64 {
        self.n_edges
    }

    /// Number of object types `|T|`.
    #[inline]
    pub fn n_types(&self) -> usize {
        self.types.len()
    }

    /// The type registry.
    #[inline]
    pub fn types(&self) -> &TypeRegistry {
        &self.types
    }

    /// The type `τ(v)` of a node.
    #[inline(always)]
    pub fn node_type(&self, v: NodeId) -> TypeId {
        self.node_types[v.index()]
    }

    /// The label (intrinsic value) of a node, e.g. `"Alice"`.
    #[inline]
    pub fn label(&self, v: NodeId) -> &str {
        &self.labels[v.index()]
    }

    /// Looks up a node by its label (linear scan; intended for tests and
    /// small demos, not hot paths).
    pub fn node_by_label(&self, label: &str) -> Option<NodeId> {
        self.labels
            .iter()
            .position(|l| l == label)
            .map(|i| NodeId(i as u32))
    }

    /// Degree of a node.
    #[inline(always)]
    pub fn degree(&self, v: NodeId) -> usize {
        (self.offsets[v.index() + 1] - self.offsets[v.index()]) as usize
    }

    /// All neighbours of `v`, sorted by `(type, id)`.
    #[inline(always)]
    pub fn neighbors(&self, v: NodeId) -> &[NodeId] {
        let (s, e) = (
            self.offsets[v.index()] as usize,
            self.offsets[v.index() + 1] as usize,
        );
        &self.adjacency[s..e]
    }

    /// The neighbours of `v` having type `ty`, as a contiguous slice.
    pub fn neighbors_of_type(&self, v: NodeId, ty: TypeId) -> &[NodeId] {
        let adj = self.neighbors(v);
        let start = adj.partition_point(|&u| self.node_type(u) < ty);
        let end = start + adj[start..].partition_point(|&u| self.node_type(u) == ty);
        &adj[start..end]
    }

    /// Number of neighbours of `v` with type `ty`.
    #[inline]
    pub fn degree_of_type(&self, v: NodeId, ty: TypeId) -> usize {
        self.neighbors_of_type(v, ty).len()
    }

    /// Edge test, O(log deg). Order-independent; self-edges are always false.
    pub fn has_edge(&self, a: NodeId, b: NodeId) -> bool {
        if a == b {
            return false;
        }
        // Probe the smaller adjacency list.
        let (probe, target) = if self.degree(a) <= self.degree(b) {
            (a, b)
        } else {
            (b, a)
        };
        let key = (self.node_type(target), target);
        self.neighbors(probe)
            .binary_search_by_key(&key, |&u| (self.node_type(u), u))
            .is_ok()
    }

    /// All nodes of a type, in increasing id order.
    pub fn nodes_of_type(&self, ty: TypeId) -> &[NodeId] {
        if ty.index() >= self.types.len() {
            return &[];
        }
        let (s, e) = (
            self.type_offsets[ty.index()] as usize,
            self.type_offsets[ty.index() + 1] as usize,
        );
        &self.type_nodes[s..e]
    }

    /// Number of nodes of a type.
    #[inline]
    pub fn n_nodes_of_type(&self, ty: TypeId) -> usize {
        self.nodes_of_type(ty).len()
    }

    /// Number of edges whose endpoint types are `{t1, t2}` (unordered).
    pub fn edge_type_count(&self, t1: TypeId, t2: TypeId) -> u64 {
        let t = self.types.len();
        if t1.index() >= t || t2.index() >= t {
            return 0;
        }
        let (lo, hi) = if t1 <= t2 { (t1, t2) } else { (t2, t1) };
        self.edge_type_counts[lo.index() * t + hi.index()]
    }

    /// Iterates all node ids `0..n`.
    pub fn nodes(&self) -> impl Iterator<Item = NodeId> + '_ {
        (0..self.n_nodes() as u32).map(NodeId)
    }

    /// Iterates all undirected edges as `(a, b)` with `a < b`.
    pub fn edges(&self) -> impl Iterator<Item = (NodeId, NodeId)> + '_ {
        self.nodes().flat_map(move |v| {
            self.neighbors(v)
                .iter()
                .copied()
                .filter(move |&u| v < u)
                .map(move |u| (v, u))
        })
    }

    /// Maximum degree over all nodes (0 for the empty graph).
    pub fn max_degree(&self) -> usize {
        self.nodes().map(|v| self.degree(v)).max().unwrap_or(0)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::GraphBuilder;

    /// Kate–Jay–College style toy: 2 users, 1 school, 1 major.
    fn small() -> (Graph, [NodeId; 4]) {
        let mut b = GraphBuilder::new();
        let user = b.add_type("user");
        let school = b.add_type("school");
        let major = b.add_type("major");
        let kate = b.add_node(user, "Kate");
        let jay = b.add_node(user, "Jay");
        let coll = b.add_node(school, "College B");
        let econ = b.add_node(major, "Economics");
        for (a, bb) in [(kate, coll), (jay, coll), (kate, econ), (jay, econ)] {
            b.add_edge(a, bb).unwrap();
        }
        (b.build(), [kate, jay, coll, econ])
    }

    #[test]
    fn basic_accessors() {
        let (g, [kate, jay, coll, econ]) = small();
        assert_eq!(g.n_nodes(), 4);
        assert_eq!(g.n_edges(), 4);
        assert_eq!(g.n_types(), 3);
        assert_eq!(g.types().name(g.node_type(kate)), Some("user"));
        assert_eq!(g.label(coll), "College B");
        assert_eq!(g.node_by_label("Jay"), Some(jay));
        assert_eq!(g.node_by_label("Nobody"), None);
        assert_eq!(g.degree(kate), 2);
        assert_eq!(g.degree(econ), 2);
        assert_eq!(g.max_degree(), 2);
    }

    #[test]
    fn has_edge_symmetric() {
        let (g, [kate, jay, coll, _]) = small();
        assert!(g.has_edge(kate, coll));
        assert!(g.has_edge(coll, kate));
        assert!(!g.has_edge(kate, jay));
        assert!(!g.has_edge(kate, kate));
    }

    #[test]
    fn typed_neighbor_slices() {
        let (g, [kate, _, coll, econ]) = small();
        let school_ty = g.types().id("school").unwrap();
        let major_ty = g.types().id("major").unwrap();
        let user_ty = g.types().id("user").unwrap();
        assert_eq!(g.neighbors_of_type(kate, school_ty), &[coll]);
        assert_eq!(g.neighbors_of_type(kate, major_ty), &[econ]);
        assert!(g.neighbors_of_type(kate, user_ty).is_empty());
        assert_eq!(g.degree_of_type(coll, user_ty), 2);
    }

    #[test]
    fn adjacency_sorted_by_type_then_id() {
        let (g, _) = small();
        for v in g.nodes() {
            let adj = g.neighbors(v);
            for w in adj.windows(2) {
                let ka = (g.node_type(w[0]), w[0]);
                let kb = (g.node_type(w[1]), w[1]);
                assert!(ka < kb, "adjacency of {v} not sorted");
            }
        }
    }

    #[test]
    fn type_node_lists() {
        let (g, [kate, jay, coll, econ]) = small();
        let user_ty = g.types().id("user").unwrap();
        assert_eq!(g.nodes_of_type(user_ty), &[kate, jay]);
        assert_eq!(g.n_nodes_of_type(user_ty), 2);
        let school_ty = g.types().id("school").unwrap();
        assert_eq!(g.nodes_of_type(school_ty), &[coll]);
        let major_ty = g.types().id("major").unwrap();
        assert_eq!(g.nodes_of_type(major_ty), &[econ]);
        assert!(g.nodes_of_type(TypeId(99)).is_empty());
    }

    #[test]
    fn edge_type_statistics() {
        let (g, _) = small();
        let user = g.types().id("user").unwrap();
        let school = g.types().id("school").unwrap();
        let major = g.types().id("major").unwrap();
        assert_eq!(g.edge_type_count(user, school), 2);
        assert_eq!(g.edge_type_count(school, user), 2);
        assert_eq!(g.edge_type_count(user, major), 2);
        assert_eq!(g.edge_type_count(school, major), 0);
        assert_eq!(g.edge_type_count(user, user), 0);
        assert_eq!(g.edge_type_count(TypeId(9), user), 0);
    }

    #[test]
    fn edge_iterator_each_edge_once() {
        let (g, _) = small();
        let edges: Vec<_> = g.edges().collect();
        assert_eq!(edges.len(), 4);
        for (a, b) in edges {
            assert!(a < b);
            assert!(g.has_edge(a, b));
        }
    }

    #[test]
    fn empty_graph() {
        let g = GraphBuilder::new().build();
        assert_eq!(g.n_nodes(), 0);
        assert_eq!(g.max_degree(), 0);
        assert_eq!(g.edges().count(), 0);
    }
}

//! Compact binary persistence for typed object graphs.
//!
//! The TSV format ([`crate::io`]) is diff-friendly; this module is the fast
//! path for large graphs (the paper-scale LinkedIn-like graph has ~66k
//! nodes and 220k edges — a few MB in this encoding vs tens in TSV).
//! It is also the graph section payload of the `mgp-persist` snapshot
//! format, so both directions are hardened: [`encode`] refuses dimensions
//! the layout cannot represent instead of silently truncating counts, and
//! [`decode`] treats every header field as attacker-controlled — all size
//! arithmetic is checked, and malformed input yields a typed
//! [`GraphError`], never a panic or an unbounded allocation.
//!
//! Layout (little-endian throughout):
//!
//! ```text
//! magic "MGPG" | version u16
//! n_types u16 | per type: name_len u16, name bytes
//! n_nodes u32 | per node: type u16
//!             | per node: label_len u32, label bytes
//! n_edges u64 | per edge: a u32, b u32   (a < b)
//! ```

use crate::{atomic_write, Graph, GraphBuilder, GraphError, NodeId, TypeId};
use bytes::{Buf, BufMut, Bytes, BytesMut};

const MAGIC: &[u8; 4] = b"MGPG";
const VERSION: u16 = 1;

/// Checked narrowing for encode-side counts: a value the wire format
/// cannot hold is a typed error, never a silent `as` wrap (a wrapped
/// count would produce a file that decodes to a *different* graph).
fn fit<T: TryFrom<usize>>(value: usize, what: &str) -> Result<T, GraphError> {
    T::try_from(value).map_err(|_| GraphError::TooLarge {
        what: what.to_owned(),
        value: value as u64,
        // All wire widths here are ≤ 64 bits, so the max fits a u64.
        max: match std::mem::size_of::<T>() {
            2 => u16::MAX as u64,
            4 => u32::MAX as u64,
            _ => u64::MAX,
        },
    })
}

/// Serialises a graph into the binary format. Fails with
/// [`GraphError::TooLarge`] when a dimension (type count, type-name or
/// label length, node count) exceeds its wire width.
pub fn encode(g: &Graph) -> Result<Bytes, GraphError> {
    let mut buf = BytesMut::with_capacity(64 + g.n_nodes() * 8 + (g.n_edges() as usize) * 8);
    buf.put_slice(MAGIC);
    buf.put_u16_le(VERSION);

    buf.put_u16_le(fit::<u16>(g.n_types(), "type count")?);
    for (_, name) in g.types().iter() {
        buf.put_u16_le(fit::<u16>(name.len(), "type name length")?);
        buf.put_slice(name.as_bytes());
    }

    buf.put_u32_le(fit::<u32>(g.n_nodes(), "node count")?);
    for v in g.nodes() {
        buf.put_u16_le(g.node_type(v).0);
    }
    for v in g.nodes() {
        let label = g.label(v);
        buf.put_u32_le(fit::<u32>(label.len(), "label length")?);
        buf.put_slice(label.as_bytes());
    }

    buf.put_u64_le(g.n_edges());
    for (a, b) in g.edges() {
        buf.put_u32_le(a.0);
        buf.put_u32_le(b.0);
    }
    Ok(buf.freeze())
}

/// Deserialises a graph from the binary format. Every count in the input
/// is validated against the remaining byte budget **with checked
/// arithmetic** before anything is allocated or read, so hostile headers
/// (a `n_edges` of 2⁶¹ whose byte product wraps, oversized label lengths,
/// truncated tails) fail with a typed [`GraphError`] instead of panicking.
pub fn decode(mut data: Bytes) -> Result<Graph, GraphError> {
    let fail = |message: &str| GraphError::Parse {
        line: 0,
        message: message.to_owned(),
    };
    let need = |data: &Bytes, n: usize, what: &str| {
        if data.remaining() < n {
            Err(fail(&format!("truncated input reading {what}")))
        } else {
            Ok(())
        }
    };
    // `count * width` on untrusted counts must not wrap: a crafted count
    // near usize::MAX would wrap to a small product, pass the bounds
    // check, and let the read loop run off the end of the buffer.
    let need_n = |data: &Bytes, count: usize, width: usize, what: &str| {
        let bytes = count
            .checked_mul(width)
            .ok_or_else(|| fail(&format!("{what} count {count} overflows size arithmetic")))?;
        need(data, bytes, what)
    };

    need(&data, 6, "header")?;
    let mut magic = [0u8; 4];
    data.copy_to_slice(&mut magic);
    if &magic != MAGIC {
        return Err(fail("bad magic"));
    }
    let version = data.get_u16_le();
    if version != VERSION {
        return Err(fail(&format!("unsupported version {version}")));
    }

    let mut b = GraphBuilder::new();
    need(&data, 2, "type count")?;
    let n_types = data.get_u16_le() as usize;
    for _ in 0..n_types {
        need(&data, 2, "type name length")?;
        let len = data.get_u16_le() as usize;
        need(&data, len, "type name")?;
        let name_bytes = data.copy_to_bytes(len);
        let name = std::str::from_utf8(&name_bytes).map_err(|_| fail("type name not utf-8"))?;
        b.add_type(name);
    }

    need(&data, 4, "node count")?;
    let n_nodes = data.get_u32_le() as usize;
    need_n(&data, n_nodes, 2, "node types")?;
    let mut node_types = Vec::with_capacity(n_nodes);
    for _ in 0..n_nodes {
        let t = data.get_u16_le();
        if t as usize >= n_types {
            return Err(GraphError::UnknownType(t));
        }
        node_types.push(TypeId(t));
    }
    for &ty in &node_types {
        need(&data, 4, "label length")?;
        let len = data.get_u32_le() as usize;
        need(&data, len, "label")?;
        let label_bytes = data.copy_to_bytes(len);
        let label = std::str::from_utf8(&label_bytes).map_err(|_| fail("label not utf-8"))?;
        b.add_node(ty, label);
    }

    need(&data, 8, "edge count")?;
    let n_edges64 = data.get_u64_le();
    let n_edges = usize::try_from(n_edges64)
        .map_err(|_| fail(&format!("edge count {n_edges64} overflows size arithmetic")))?;
    need_n(&data, n_edges, 8, "edges")?;
    for _ in 0..n_edges {
        let a = data.get_u32_le();
        let c = data.get_u32_le();
        b.add_edge(NodeId(a), NodeId(c))?;
    }
    Ok(b.build())
}

/// Writes the binary encoding to a file **atomically** (temp file +
/// rename via [`crate::atomic_write`]): a crash mid-write leaves the
/// previous file intact, never a truncated one at `path`.
pub fn save_binary(g: &Graph, path: impl AsRef<std::path::Path>) -> Result<(), GraphError> {
    let bytes = encode(g)?;
    atomic_write(path, &bytes)?;
    Ok(())
}

/// Reads a graph from a binary file.
pub fn load_binary(path: impl AsRef<std::path::Path>) -> Result<Graph, GraphError> {
    let data = std::fs::read(path)?;
    decode(Bytes::from(data))
}

#[cfg(test)]
mod tests {
    use super::*;

    fn sample() -> Graph {
        let mut b = GraphBuilder::new();
        let user = b.add_type("user");
        let addr = b.add_type("address");
        let alice = b.add_node(user, "Alice");
        let bob = b.add_node(user, "Bob");
        let green = b.add_node(addr, "123 Green St");
        b.add_edge(alice, green).unwrap();
        b.add_edge(bob, green).unwrap();
        b.build()
    }

    #[test]
    fn roundtrip() {
        let g = sample();
        let g2 = decode(encode(&g).unwrap()).unwrap();
        assert_eq!(g2.n_nodes(), g.n_nodes());
        assert_eq!(g2.n_edges(), g.n_edges());
        assert_eq!(g2.n_types(), g.n_types());
        for v in g.nodes() {
            assert_eq!(g2.label(v), g.label(v));
            assert_eq!(g2.node_type(v), g.node_type(v));
        }
        for (a, b) in g.edges() {
            assert!(g2.has_edge(a, b));
        }
    }

    #[test]
    fn rejects_bad_magic() {
        let mut data = encode(&sample()).unwrap().to_vec();
        data[0] = b'X';
        assert!(matches!(
            decode(Bytes::from(data)),
            Err(GraphError::Parse { .. })
        ));
    }

    #[test]
    fn rejects_bad_version() {
        let mut data = encode(&sample()).unwrap().to_vec();
        data[4] = 99;
        assert!(decode(Bytes::from(data)).is_err());
    }

    #[test]
    fn rejects_truncation_everywhere() {
        let data = encode(&sample()).unwrap();
        // Every prefix must fail cleanly, never panic.
        for cut in 0..data.len() {
            let sliced = data.slice(0..cut);
            assert!(decode(sliced).is_err(), "prefix of {cut} bytes decoded");
        }
    }

    #[test]
    fn rejects_out_of_range_type() {
        let g = sample();
        let mut data = encode(&g).unwrap().to_vec();
        // Node type table starts after magic+version+types+node count.
        // Corrupt the first node's type to 0xFFFF.
        let tyoff = 4 + 2 + 2 + (2 + 4) + (2 + 7) + 4;
        data[tyoff] = 0xFF;
        data[tyoff + 1] = 0xFF;
        assert!(matches!(
            decode(Bytes::from(data)),
            Err(GraphError::UnknownType(0xFFFF))
        ));
    }

    /// Byte offset of the `n_edges` field in the sample encoding.
    fn edge_count_offset(data: &[u8]) -> usize {
        // Everything up to and including the label table, computed by
        // re-walking the layout (the sample has 2 types, 3 nodes).
        let mut off = 4 + 2; // magic + version
        off += 2; // n_types
        off += 2 + 4; // "user"
        off += 2 + 7; // "address"
        off += 4; // n_nodes
        off += 3 * 2; // node types
        for label in ["Alice", "Bob", "123 Green St"] {
            off += 4 + label.len();
        }
        assert!(off + 8 <= data.len(), "offset walk out of bounds");
        off
    }

    #[test]
    fn hostile_edge_count_cannot_wrap_bounds_check() {
        // A crafted n_edges of 2^61 makes `n_edges * 8` wrap to 0 with
        // unchecked arithmetic — the bounds check would pass and the read
        // loop would panic. It must be a typed parse error instead.
        let g = sample();
        let mut data = encode(&g).unwrap().to_vec();
        let off = edge_count_offset(&data);
        data[off..off + 8].copy_from_slice(&(1u64 << 61).to_le_bytes());
        match decode(Bytes::from(data)) {
            Err(GraphError::Parse { message, .. }) => {
                assert!(
                    message.contains("edges") || message.contains("overflow"),
                    "{message}"
                );
            }
            other => panic!("expected parse error, got {other:?}"),
        }
    }

    #[test]
    fn hostile_edge_count_just_past_the_tail() {
        // Plausible but oversized count: no wrap, plain truncation error.
        let g = sample();
        let mut data = encode(&g).unwrap().to_vec();
        let off = edge_count_offset(&data);
        data[off..off + 8].copy_from_slice(&1_000_000u64.to_le_bytes());
        assert!(matches!(
            decode(Bytes::from(data)),
            Err(GraphError::Parse { .. })
        ));
    }

    #[test]
    fn hostile_node_count_rejected_before_allocation() {
        // Huge n_nodes with a tiny tail: the checked `n_nodes * 2` budget
        // test must fire before the node-type Vec is reserved.
        let mut data = Vec::new();
        data.extend_from_slice(MAGIC);
        data.extend_from_slice(&VERSION.to_le_bytes());
        data.extend_from_slice(&0u16.to_le_bytes()); // no types
        data.extend_from_slice(&u32::MAX.to_le_bytes()); // n_nodes
        assert!(matches!(
            decode(Bytes::from(data)),
            Err(GraphError::Parse { .. })
        ));
    }

    #[test]
    fn hostile_label_length_rejected() {
        let g = sample();
        let data = encode(&g).unwrap().to_vec();
        let off = edge_count_offset(&data) - (4 + "123 Green St".len());
        let mut data = data;
        data[off..off + 4].copy_from_slice(&u32::MAX.to_le_bytes());
        assert!(matches!(
            decode(Bytes::from(data)),
            Err(GraphError::Parse { .. })
        ));
    }

    #[test]
    fn encode_refuses_oversized_type_name() {
        let mut b = GraphBuilder::new();
        let long = "x".repeat(u16::MAX as usize + 1);
        b.add_type(&long);
        let g = b.build();
        assert!(matches!(
            encode(&g),
            Err(GraphError::TooLarge { ref what, .. }) if what == "type name length"
        ));
    }

    #[test]
    fn encode_refuses_too_many_types() {
        let mut b = GraphBuilder::new();
        for i in 0..=u16::MAX as usize {
            b.add_type(&format!("t{i}"));
        }
        let g = b.build();
        assert!(matches!(
            encode(&g),
            Err(GraphError::TooLarge { ref what, .. }) if what == "type count"
        ));
    }

    #[test]
    fn file_roundtrip() {
        let g = sample();
        let dir = std::env::temp_dir().join("mgp_graph_binary_test");
        std::fs::create_dir_all(&dir).unwrap();
        let path = dir.join("g.bin");
        save_binary(&g, &path).unwrap();
        let g2 = load_binary(&path).unwrap();
        assert_eq!(g2.n_nodes(), g.n_nodes());
        std::fs::remove_file(path).ok();
    }

    #[test]
    fn save_binary_is_atomic_over_existing_file() {
        // Overwriting must go through the temp+rename path: afterwards the
        // destination decodes cleanly and no temp files remain.
        let g = sample();
        let dir = std::env::temp_dir().join(format!("mgp_binary_atomic_{}", std::process::id()));
        std::fs::create_dir_all(&dir).unwrap();
        let path = dir.join("g.bin");
        std::fs::write(&path, b"garbage from a previous run").unwrap();
        save_binary(&g, &path).unwrap();
        let g2 = load_binary(&path).unwrap();
        assert_eq!(g2.n_nodes(), g.n_nodes());
        let extras: Vec<_> = std::fs::read_dir(&dir)
            .unwrap()
            .map(|e| e.unwrap().file_name())
            .filter(|n| n != "g.bin")
            .collect();
        assert!(extras.is_empty(), "temp litter: {extras:?}");
        std::fs::remove_dir_all(&dir).ok();
    }

    #[test]
    fn empty_graph_roundtrip() {
        let g = GraphBuilder::new().build();
        let g2 = decode(encode(&g).unwrap()).unwrap();
        assert_eq!(g2.n_nodes(), 0);
        assert_eq!(g2.n_edges(), 0);
    }
}

//! Compact binary persistence for typed object graphs.
//!
//! The TSV format ([`crate::io`]) is diff-friendly; this module is the fast
//! path for large graphs (the paper-scale LinkedIn-like graph has ~66k
//! nodes and 220k edges — a few MB in this encoding vs tens in TSV).
//!
//! Layout (little-endian throughout):
//!
//! ```text
//! magic "MGPG" | version u16
//! n_types u16 | per type: name_len u16, name bytes
//! n_nodes u32 | per node: type u16
//!             | per node: label_len u32, label bytes
//! n_edges u64 | per edge: a u32, b u32   (a < b)
//! ```

use crate::{Graph, GraphBuilder, GraphError, NodeId, TypeId};
use bytes::{Buf, BufMut, Bytes, BytesMut};

const MAGIC: &[u8; 4] = b"MGPG";
const VERSION: u16 = 1;

/// Serialises a graph into the binary format.
pub fn encode(g: &Graph) -> Bytes {
    let mut buf = BytesMut::with_capacity(64 + g.n_nodes() * 8 + (g.n_edges() as usize) * 8);
    buf.put_slice(MAGIC);
    buf.put_u16_le(VERSION);

    buf.put_u16_le(g.n_types() as u16);
    for (_, name) in g.types().iter() {
        buf.put_u16_le(name.len() as u16);
        buf.put_slice(name.as_bytes());
    }

    buf.put_u32_le(g.n_nodes() as u32);
    for v in g.nodes() {
        buf.put_u16_le(g.node_type(v).0);
    }
    for v in g.nodes() {
        let label = g.label(v);
        buf.put_u32_le(label.len() as u32);
        buf.put_slice(label.as_bytes());
    }

    buf.put_u64_le(g.n_edges());
    for (a, b) in g.edges() {
        buf.put_u32_le(a.0);
        buf.put_u32_le(b.0);
    }
    buf.freeze()
}

/// Deserialises a graph from the binary format.
pub fn decode(mut data: Bytes) -> Result<Graph, GraphError> {
    let fail = |message: &str| GraphError::Parse {
        line: 0,
        message: message.to_owned(),
    };
    let need = |data: &Bytes, n: usize, what: &str| {
        if data.remaining() < n {
            Err(fail(&format!("truncated input reading {what}")))
        } else {
            Ok(())
        }
    };

    need(&data, 6, "header")?;
    let mut magic = [0u8; 4];
    data.copy_to_slice(&mut magic);
    if &magic != MAGIC {
        return Err(fail("bad magic"));
    }
    let version = data.get_u16_le();
    if version != VERSION {
        return Err(fail(&format!("unsupported version {version}")));
    }

    let mut b = GraphBuilder::new();
    need(&data, 2, "type count")?;
    let n_types = data.get_u16_le() as usize;
    for _ in 0..n_types {
        need(&data, 2, "type name length")?;
        let len = data.get_u16_le() as usize;
        need(&data, len, "type name")?;
        let name_bytes = data.copy_to_bytes(len);
        let name = std::str::from_utf8(&name_bytes).map_err(|_| fail("type name not utf-8"))?;
        b.add_type(name);
    }

    need(&data, 4, "node count")?;
    let n_nodes = data.get_u32_le() as usize;
    need(&data, n_nodes * 2, "node types")?;
    let mut node_types = Vec::with_capacity(n_nodes);
    for _ in 0..n_nodes {
        let t = data.get_u16_le();
        if t as usize >= n_types {
            return Err(GraphError::UnknownType(t));
        }
        node_types.push(TypeId(t));
    }
    for &ty in &node_types {
        need(&data, 4, "label length")?;
        let len = data.get_u32_le() as usize;
        need(&data, len, "label")?;
        let label_bytes = data.copy_to_bytes(len);
        let label = std::str::from_utf8(&label_bytes).map_err(|_| fail("label not utf-8"))?;
        b.add_node(ty, label);
    }

    need(&data, 8, "edge count")?;
    let n_edges = data.get_u64_le() as usize;
    need(&data, n_edges * 8, "edges")?;
    for _ in 0..n_edges {
        let a = data.get_u32_le();
        let c = data.get_u32_le();
        b.add_edge(NodeId(a), NodeId(c))?;
    }
    Ok(b.build())
}

/// Writes the binary encoding to a file.
pub fn save_binary(g: &Graph, path: impl AsRef<std::path::Path>) -> Result<(), GraphError> {
    std::fs::write(path, encode(g))?;
    Ok(())
}

/// Reads a graph from a binary file.
pub fn load_binary(path: impl AsRef<std::path::Path>) -> Result<Graph, GraphError> {
    let data = std::fs::read(path)?;
    decode(Bytes::from(data))
}

#[cfg(test)]
mod tests {
    use super::*;

    fn sample() -> Graph {
        let mut b = GraphBuilder::new();
        let user = b.add_type("user");
        let addr = b.add_type("address");
        let alice = b.add_node(user, "Alice");
        let bob = b.add_node(user, "Bob");
        let green = b.add_node(addr, "123 Green St");
        b.add_edge(alice, green).unwrap();
        b.add_edge(bob, green).unwrap();
        b.build()
    }

    #[test]
    fn roundtrip() {
        let g = sample();
        let g2 = decode(encode(&g)).unwrap();
        assert_eq!(g2.n_nodes(), g.n_nodes());
        assert_eq!(g2.n_edges(), g.n_edges());
        assert_eq!(g2.n_types(), g.n_types());
        for v in g.nodes() {
            assert_eq!(g2.label(v), g.label(v));
            assert_eq!(g2.node_type(v), g.node_type(v));
        }
        for (a, b) in g.edges() {
            assert!(g2.has_edge(a, b));
        }
    }

    #[test]
    fn rejects_bad_magic() {
        let mut data = encode(&sample()).to_vec();
        data[0] = b'X';
        assert!(matches!(
            decode(Bytes::from(data)),
            Err(GraphError::Parse { .. })
        ));
    }

    #[test]
    fn rejects_bad_version() {
        let mut data = encode(&sample()).to_vec();
        data[4] = 99;
        assert!(decode(Bytes::from(data)).is_err());
    }

    #[test]
    fn rejects_truncation_everywhere() {
        let data = encode(&sample());
        // Every prefix must fail cleanly, never panic.
        for cut in 0..data.len() {
            let sliced = data.slice(0..cut);
            assert!(decode(sliced).is_err(), "prefix of {cut} bytes decoded");
        }
    }

    #[test]
    fn rejects_out_of_range_type() {
        let g = sample();
        let mut data = encode(&g).to_vec();
        // Node type table starts after magic+version+types+node count.
        // Corrupt the first node's type to 0xFFFF.
        let tyoff = 4 + 2 + 2 + (2 + 4) + (2 + 7) + 4;
        data[tyoff] = 0xFF;
        data[tyoff + 1] = 0xFF;
        assert!(matches!(
            decode(Bytes::from(data)),
            Err(GraphError::UnknownType(0xFFFF))
        ));
    }

    #[test]
    fn file_roundtrip() {
        let g = sample();
        let dir = std::env::temp_dir().join("mgp_graph_binary_test");
        std::fs::create_dir_all(&dir).unwrap();
        let path = dir.join("g.bin");
        save_binary(&g, &path).unwrap();
        let g2 = load_binary(&path).unwrap();
        assert_eq!(g2.n_nodes(), g.n_nodes());
        std::fs::remove_file(path).ok();
    }

    #[test]
    fn empty_graph_roundtrip() {
        let g = GraphBuilder::new().build();
        let g2 = decode(encode(&g)).unwrap();
        assert_eq!(g2.n_nodes(), 0);
        assert_eq!(g2.n_edges(), 0);
    }
}

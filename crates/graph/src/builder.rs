//! Mutable construction of a [`Graph`] before freezing it into CSR form.

use crate::csr::Graph;
use crate::{GraphError, NodeId, TypeId, TypeRegistry};

/// Incremental builder for a typed object graph.
///
/// Collects nodes (each with a type and an optional human-readable label,
/// e.g. `"Alice"` or `"123 Green St"`) and undirected edges, then freezes
/// them into an immutable CSR [`Graph`] with [`GraphBuilder::build`].
///
/// Duplicate edges are deduplicated at build time; self-loops are rejected
/// eagerly (the object graph is simple, per Sect. II-A).
///
/// ```
/// use mgp_graph::GraphBuilder;
/// let mut b = GraphBuilder::new();
/// let user = b.add_type("user");
/// let school = b.add_type("school");
/// let kate = b.add_node(user, "Kate");
/// let jay = b.add_node(user, "Jay");
/// let college = b.add_node(school, "College B");
/// b.add_edge(kate, college).unwrap();
/// b.add_edge(jay, college).unwrap();
/// let g = b.build();
/// assert_eq!(g.n_nodes(), 3);
/// assert_eq!(g.n_edges(), 2);
/// assert!(g.has_edge(kate, college));
/// assert!(!g.has_edge(kate, jay));
/// ```
#[derive(Debug, Clone, Default)]
pub struct GraphBuilder {
    types: TypeRegistry,
    node_types: Vec<TypeId>,
    labels: Vec<String>,
    edges: Vec<(NodeId, NodeId)>,
}

impl GraphBuilder {
    /// Creates an empty builder.
    pub fn new() -> Self {
        Self::default()
    }

    /// Creates an empty builder with node/edge capacity hints.
    pub fn with_capacity(nodes: usize, edges: usize) -> Self {
        GraphBuilder {
            types: TypeRegistry::new(),
            node_types: Vec::with_capacity(nodes),
            labels: Vec::with_capacity(nodes),
            edges: Vec::with_capacity(edges),
        }
    }

    /// Interns an object type by name.
    pub fn add_type(&mut self, name: &str) -> TypeId {
        self.types.intern(name)
    }

    /// Read access to the type registry being built.
    pub fn types(&self) -> &TypeRegistry {
        &self.types
    }

    /// Adds a node of the given type with a label; returns its dense id.
    ///
    /// # Panics
    /// Panics if `ty` was not interned through this builder, or if more than
    /// `u32::MAX` nodes are added.
    pub fn add_node(&mut self, ty: TypeId, label: impl Into<String>) -> NodeId {
        assert!(
            ty.index() < self.types.len(),
            "type {ty} not registered in this builder"
        );
        let id = NodeId(u32::try_from(self.node_types.len()).expect("too many nodes"));
        self.node_types.push(ty);
        self.labels.push(label.into());
        id
    }

    /// Adds an unlabelled node (label = empty string).
    pub fn add_unlabeled_node(&mut self, ty: TypeId) -> NodeId {
        self.add_node(ty, String::new())
    }

    /// Adds an undirected edge. Duplicates are tolerated (deduplicated at
    /// build time); self-loops and references to unknown nodes are errors.
    pub fn add_edge(&mut self, a: NodeId, b: NodeId) -> Result<(), GraphError> {
        if a == b {
            return Err(GraphError::SelfLoop(a.0));
        }
        let n = self.node_types.len() as u32;
        for v in [a, b] {
            if v.0 >= n {
                return Err(GraphError::UnknownNode(v.0));
            }
        }
        self.edges.push(if a.0 < b.0 { (a, b) } else { (b, a) });
        Ok(())
    }

    /// Number of nodes added so far.
    pub fn n_nodes(&self) -> usize {
        self.node_types.len()
    }

    /// Number of edge insertions so far (before deduplication).
    pub fn n_edge_insertions(&self) -> usize {
        self.edges.len()
    }

    /// Freezes the builder into an immutable CSR [`Graph`].
    pub fn build(mut self) -> Graph {
        // Deduplicate edges.
        self.edges.sort_unstable();
        self.edges.dedup();
        Graph::from_parts(self.types, self.node_types, self.labels, &self.edges)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn rejects_self_loop() {
        let mut b = GraphBuilder::new();
        let t = b.add_type("user");
        let n = b.add_node(t, "a");
        assert_eq!(b.add_edge(n, n), Err(GraphError::SelfLoop(0)));
    }

    #[test]
    fn rejects_unknown_node() {
        let mut b = GraphBuilder::new();
        let t = b.add_type("user");
        let n = b.add_node(t, "a");
        assert_eq!(b.add_edge(n, NodeId(5)), Err(GraphError::UnknownNode(5)));
    }

    #[test]
    fn dedups_parallel_edges() {
        let mut b = GraphBuilder::new();
        let t = b.add_type("user");
        let a = b.add_node(t, "a");
        let c = b.add_node(t, "c");
        b.add_edge(a, c).unwrap();
        b.add_edge(c, a).unwrap();
        b.add_edge(a, c).unwrap();
        assert_eq!(b.n_edge_insertions(), 3);
        let g = b.build();
        assert_eq!(g.n_edges(), 1);
        assert_eq!(g.degree(a), 1);
        assert_eq!(g.degree(c), 1);
    }

    #[test]
    #[should_panic(expected = "not registered")]
    fn panics_on_foreign_type() {
        let mut b = GraphBuilder::new();
        b.add_node(TypeId(3), "x");
    }

    #[test]
    fn empty_build() {
        let g = GraphBuilder::new().build();
        assert_eq!(g.n_nodes(), 0);
        assert_eq!(g.n_edges(), 0);
    }

    #[test]
    fn with_capacity_behaves_like_new() {
        let mut b = GraphBuilder::with_capacity(10, 10);
        let t = b.add_type("x");
        let n1 = b.add_node(t, "1");
        let n2 = b.add_unlabeled_node(t);
        b.add_edge(n1, n2).unwrap();
        let g = b.build();
        assert_eq!(g.n_nodes(), 2);
        assert_eq!(g.label(n2), "");
    }
}

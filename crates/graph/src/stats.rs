//! Summary statistics over a typed object graph (Table II of the paper).

use crate::{Graph, TypeId};
use serde::{Deserialize, Serialize};

/// Dataset-description statistics as reported in the paper's Table II,
/// plus a per-type breakdown.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct GraphStats {
    /// Total nodes `|V|`.
    pub n_nodes: usize,
    /// Total undirected edges `|E|`.
    pub n_edges: u64,
    /// Number of object types `|T|`.
    pub n_types: usize,
    /// `(type name, node count)` per type, in type-id order.
    pub nodes_per_type: Vec<(String, usize)>,
    /// Average degree (2|E| / |V|; 0 for the empty graph).
    pub avg_degree: f64,
    /// Maximum degree.
    pub max_degree: usize,
}

impl GraphStats {
    /// Computes statistics for a graph.
    pub fn compute(g: &Graph) -> Self {
        let nodes_per_type = g
            .types()
            .iter()
            .map(|(id, name)| (name.to_owned(), g.n_nodes_of_type(id)))
            .collect();
        let avg_degree = if g.n_nodes() == 0 {
            0.0
        } else {
            2.0 * g.n_edges() as f64 / g.n_nodes() as f64
        };
        GraphStats {
            n_nodes: g.n_nodes(),
            n_edges: g.n_edges(),
            n_types: g.n_types(),
            nodes_per_type,
            avg_degree,
            max_degree: g.max_degree(),
        }
    }

    /// Renders a one-line Table II-style row: `#Nodes #Edges #Types`.
    pub fn table_row(&self, name: &str) -> String {
        format!(
            "{name}\t{}\t{}\t{}",
            self.n_nodes, self.n_edges, self.n_types
        )
    }
}

/// Counts the nodes of `g` whose type is `ty` and whose degree is at least
/// `min_degree`. Useful for picking well-connected query nodes.
pub fn nodes_with_min_degree(g: &Graph, ty: TypeId, min_degree: usize) -> usize {
    g.nodes_of_type(ty)
        .iter()
        .filter(|&&v| g.degree(v) >= min_degree)
        .count()
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::GraphBuilder;

    fn sample() -> Graph {
        let mut b = GraphBuilder::new();
        let user = b.add_type("user");
        let school = b.add_type("school");
        let u1 = b.add_node(user, "u1");
        let u2 = b.add_node(user, "u2");
        let u3 = b.add_node(user, "u3");
        let s = b.add_node(school, "s");
        b.add_edge(u1, s).unwrap();
        b.add_edge(u2, s).unwrap();
        b.add_edge(u3, s).unwrap();
        b.build()
    }

    #[test]
    fn stats_basic() {
        let g = sample();
        let st = GraphStats::compute(&g);
        assert_eq!(st.n_nodes, 4);
        assert_eq!(st.n_edges, 3);
        assert_eq!(st.n_types, 2);
        assert_eq!(st.max_degree, 3);
        assert!((st.avg_degree - 1.5).abs() < 1e-12);
        assert_eq!(
            st.nodes_per_type,
            vec![("user".to_owned(), 3), ("school".to_owned(), 1)]
        );
    }

    #[test]
    fn table_row_format() {
        let g = sample();
        let st = GraphStats::compute(&g);
        assert_eq!(st.table_row("Tiny"), "Tiny\t4\t3\t2");
    }

    #[test]
    fn min_degree_filter() {
        let g = sample();
        let user = g.types().id("user").unwrap();
        let school = g.types().id("school").unwrap();
        assert_eq!(nodes_with_min_degree(&g, user, 1), 3);
        assert_eq!(nodes_with_min_degree(&g, user, 2), 0);
        assert_eq!(nodes_with_min_degree(&g, school, 3), 1);
    }

    #[test]
    fn empty_graph_stats() {
        let g = GraphBuilder::new().build();
        let st = GraphStats::compute(&g);
        assert_eq!(st.avg_degree, 0.0);
        assert_eq!(st.n_nodes, 0);
    }
}

//! Incremental graph churn: [`GraphDelta`] batches of node/edge
//! insertions *and removals*, with a CSR *splicing* path that avoids the
//! full rebuild of [`crate::GraphBuilder::build`].
//!
//! The object graph is immutable CSR for matching speed, which makes naive
//! updates O(|V| + |E|) re-sorts. [`Graph::apply_delta`] instead produces
//! the updated graph by splicing: untouched adjacency lists are copied
//! verbatim (they are already `(type, id)`-sorted), and only the lists of
//! nodes gaining or losing edges are re-merged — a three-way linear merge
//! of the old sorted run minus its sorted removals plus its sorted
//! additions. Per-type node lists stay sorted for free because new node
//! ids are larger than every existing id. The result is indistinguishable
//! from rebuilding from scratch (asserted by tests) at a fraction of the
//! cost — the substrate for the delta-driven matching/index/serving
//! pipeline upstream.
//!
//! ## Removal semantics
//!
//! * Edge removal targets the *pre-batch* graph: removing an edge absent
//!   from the base is tolerated and ignored (dangling CDC events are
//!   common), as are duplicate removals of the same edge.
//! * Node removal is a **tombstone detach**: all of the node's current
//!   edges are removed, but the id survives with degree 0 — dense node
//!   ids are never reused or compacted (compaction is a follow-on, see
//!   ROADMAP). Only base nodes can be removed; removing a node added in
//!   the same delta is rejected eagerly.
//! * A batch is *net*: an edge both removed and inserted in one delta
//!   survives (insertion defines the post-state), and appears in neither
//!   [`GraphExtension::new_edges`] nor [`GraphExtension::removed_edges`].
//!   In particular, edges inserted towards a node that the same batch
//!   removes do land — the removal detaches the node's *current* edges.

use crate::csr::Graph;
use crate::{GraphError, NodeId, TypeId};

/// A batch of churn against a fixed base graph: new nodes (each with a
/// type already registered in the base), new undirected edges among old
/// and new nodes, and removals of base edges and base nodes.
///
/// Deltas are constructed against a specific base via
/// [`GraphDelta::for_graph`] so node-id assignment matches the extended
/// graph. Edges already present in the base, duplicates within the delta,
/// and removals of absent edges are tolerated and dropped during
/// [`Graph::apply_delta`].
#[derive(Debug, Clone, Default, PartialEq, Eq)]
pub struct GraphDelta {
    base_nodes: u32,
    node_types: Vec<TypeId>,
    node_labels: Vec<String>,
    edges: Vec<(NodeId, NodeId)>,
    removed_edges: Vec<(NodeId, NodeId)>,
    removed_nodes: Vec<NodeId>,
}

impl GraphDelta {
    /// Creates an empty delta against `base` (ids of nodes added here
    /// continue the base graph's dense id space).
    pub fn for_graph(base: &Graph) -> Self {
        GraphDelta {
            base_nodes: base.n_nodes() as u32,
            ..Default::default()
        }
    }

    /// Adds a node of an existing type; returns the id it will have in the
    /// extended graph.
    pub fn add_node(&mut self, ty: TypeId, label: impl Into<String>) -> NodeId {
        let id = NodeId(self.base_nodes + self.node_types.len() as u32);
        self.node_types.push(ty);
        self.node_labels.push(label.into());
        id
    }

    /// Adds an undirected edge between old and/or delta-added nodes.
    /// Self-loops and out-of-range endpoints are rejected eagerly.
    pub fn add_edge(&mut self, a: NodeId, b: NodeId) -> Result<(), GraphError> {
        if a == b {
            return Err(GraphError::SelfLoop(a.0));
        }
        let n = self.base_nodes + self.node_types.len() as u32;
        for v in [a, b] {
            if v.0 >= n {
                return Err(GraphError::UnknownNode(v.0));
            }
        }
        self.edges.push(if a.0 < b.0 { (a, b) } else { (b, a) });
        Ok(())
    }

    /// Records the removal of an undirected base edge. Both endpoints must
    /// be base nodes (an edge towards a delta-added node cannot pre-exist,
    /// so removing one is meaningless and rejected eagerly). Removing an
    /// edge the base does not have is tolerated at apply time.
    pub fn remove_edge(&mut self, a: NodeId, b: NodeId) -> Result<(), GraphError> {
        if a == b {
            return Err(GraphError::SelfLoop(a.0));
        }
        for v in [a, b] {
            if v.0 >= self.base_nodes {
                return Err(GraphError::UnknownNode(v.0));
            }
        }
        self.removed_edges
            .push(if a.0 < b.0 { (a, b) } else { (b, a) });
        Ok(())
    }

    /// Records the removal of a base node: a *tombstone detach* that drops
    /// every edge the node has in the base graph while keeping its id (at
    /// degree 0). Only base nodes are removable.
    pub fn remove_node(&mut self, v: NodeId) -> Result<(), GraphError> {
        if v.0 >= self.base_nodes {
            return Err(GraphError::UnknownNode(v.0));
        }
        self.removed_nodes.push(v);
        Ok(())
    }

    /// Number of nodes this delta adds.
    pub fn n_new_nodes(&self) -> usize {
        self.node_types.len()
    }

    /// Number of edge insertions recorded (before deduplication).
    pub fn n_edge_insertions(&self) -> usize {
        self.edges.len()
    }

    /// Number of edge removals recorded (before deduplication; node
    /// removals expand to their incident edges at apply time and are not
    /// counted here).
    pub fn n_edge_removals(&self) -> usize {
        self.removed_edges.len()
    }

    /// Number of node removals (tombstone detaches) recorded.
    pub fn n_node_removals(&self) -> usize {
        self.removed_nodes.len()
    }

    /// Whether the delta carries no insertions or removals at all.
    pub fn is_empty(&self) -> bool {
        self.node_types.is_empty()
            && self.edges.is_empty()
            && self.removed_edges.is_empty()
            && self.removed_nodes.is_empty()
    }

    /// Types of the delta-added nodes, in id order.
    pub fn new_node_types(&self) -> &[TypeId] {
        &self.node_types
    }

    /// Serialises the delta into the compact journal-record layout
    /// (little-endian):
    ///
    /// ```text
    /// magic "MGPD" | version u16
    /// base_nodes u32
    /// n_new u32   | per new node: type u16
    ///             | per new node: label_len u32, label bytes
    /// n_edges u64         | per edge: a u32, b u32
    /// n_removed_edges u64 | per edge: a u32, b u32
    /// n_removed_nodes u64 | per node: v u32
    /// ```
    ///
    /// This is the payload of one `mgp-persist` delta-journal record;
    /// like [`crate::binary::encode`] it refuses dimensions the layout
    /// cannot hold instead of silently truncating them.
    pub fn to_bytes(&self) -> Result<Vec<u8>, GraphError> {
        let too_large = |what: &str, value: usize| GraphError::TooLarge {
            what: what.to_owned(),
            value: value as u64,
            max: u32::MAX as u64,
        };
        let mut buf = Vec::with_capacity(
            32 + self.node_labels.iter().map(|l| l.len() + 6).sum::<usize>()
                + (self.edges.len() + self.removed_edges.len()) * 8
                + self.removed_nodes.len() * 4,
        );
        buf.extend_from_slice(DELTA_MAGIC);
        buf.extend_from_slice(&DELTA_VERSION.to_le_bytes());
        buf.extend_from_slice(&self.base_nodes.to_le_bytes());
        let n_new = u32::try_from(self.node_types.len())
            .map_err(|_| too_large("new-node count", self.node_types.len()))?;
        buf.extend_from_slice(&n_new.to_le_bytes());
        for ty in &self.node_types {
            buf.extend_from_slice(&ty.0.to_le_bytes());
        }
        for label in &self.node_labels {
            let len =
                u32::try_from(label.len()).map_err(|_| too_large("label length", label.len()))?;
            buf.extend_from_slice(&len.to_le_bytes());
            buf.extend_from_slice(label.as_bytes());
        }
        for list in [&self.edges, &self.removed_edges] {
            buf.extend_from_slice(&(list.len() as u64).to_le_bytes());
            for (a, b) in list {
                buf.extend_from_slice(&a.0.to_le_bytes());
                buf.extend_from_slice(&b.0.to_le_bytes());
            }
        }
        buf.extend_from_slice(&(self.removed_nodes.len() as u64).to_le_bytes());
        for v in &self.removed_nodes {
            buf.extend_from_slice(&v.0.to_le_bytes());
        }
        Ok(buf)
    }

    /// Deserialises a delta previously produced by
    /// [`GraphDelta::to_bytes`]. All counts are treated as untrusted:
    /// size arithmetic is checked and malformed input yields a typed
    /// [`GraphError::Parse`], never a panic — a corrupt journal record
    /// must be detectable, not fatal. Structural validity against a
    /// concrete base graph is still [`Graph::apply_delta`]'s job.
    pub fn from_bytes(data: &[u8]) -> Result<GraphDelta, GraphError> {
        let mut cur = RecordCursor { data };
        let fail = |message: &str| GraphError::Parse {
            line: 0,
            message: message.to_owned(),
        };

        let magic = cur.take(4, "header")?;
        if magic != DELTA_MAGIC {
            return Err(fail("bad delta magic"));
        }
        let version = cur.u16("header")?;
        if version != DELTA_VERSION {
            return Err(fail(&format!("unsupported delta version {version}")));
        }

        let base_nodes = cur.u32("base node count")?;
        let n_new = cur.u32("new-node count")? as usize;
        cur.check(n_new, 2, "new-node types")?;
        let mut node_types = Vec::with_capacity(n_new);
        for _ in 0..n_new {
            node_types.push(TypeId(cur.u16("new-node types")?));
        }
        let mut node_labels = Vec::with_capacity(n_new);
        for _ in 0..n_new {
            let len = cur.u32("label length")? as usize;
            let bytes = cur.take(len, "label")?;
            let label = std::str::from_utf8(bytes).map_err(|_| fail("label not utf-8"))?;
            node_labels.push(label.to_owned());
        }

        let mut edge_list = |what: &str| -> Result<Vec<(NodeId, NodeId)>, GraphError> {
            let n = cur.u64_count(what)?;
            cur.check(n, 8, what)?;
            let mut list = Vec::with_capacity(n);
            for _ in 0..n {
                let a = cur.u32(what)?;
                let b = cur.u32(what)?;
                list.push((NodeId(a), NodeId(b)));
            }
            Ok(list)
        };
        let edges = edge_list("edges")?;
        let removed_edges = edge_list("removed edges")?;

        let n_removed = cur.u64_count("removed nodes")?;
        cur.check(n_removed, 4, "removed nodes")?;
        let mut removed_nodes = Vec::with_capacity(n_removed);
        for _ in 0..n_removed {
            removed_nodes.push(NodeId(cur.u32("removed nodes")?));
        }
        if !cur.data.is_empty() {
            return Err(fail("trailing bytes after delta record"));
        }
        Ok(GraphDelta {
            base_nodes,
            node_types,
            node_labels,
            edges,
            removed_edges,
            removed_nodes,
        })
    }
}

const DELTA_MAGIC: &[u8; 4] = b"MGPD";
const DELTA_VERSION: u16 = 1;

/// Bounds-checked little-endian reader over an untrusted record: every
/// read validates the remaining budget first (with checked size
/// arithmetic for counted payloads), so a corrupt or truncated record is
/// a typed [`GraphError::Parse`], never a panic.
struct RecordCursor<'a> {
    data: &'a [u8],
}

impl<'a> RecordCursor<'a> {
    fn fail(message: String) -> GraphError {
        GraphError::Parse { line: 0, message }
    }

    fn take(&mut self, n: usize, what: &str) -> Result<&'a [u8], GraphError> {
        if self.data.len() < n {
            return Err(Self::fail(format!("truncated delta record reading {what}")));
        }
        let (head, tail) = self.data.split_at(n);
        self.data = tail;
        Ok(head)
    }

    /// Verifies that `count` items of `width` bytes fit the remaining
    /// budget without letting the product wrap.
    fn check(&self, count: usize, width: usize, what: &str) -> Result<(), GraphError> {
        let bytes = count
            .checked_mul(width)
            .ok_or_else(|| Self::fail(format!("{what} count {count} overflows size arithmetic")))?;
        if self.data.len() < bytes {
            return Err(Self::fail(format!("truncated delta record reading {what}")));
        }
        Ok(())
    }

    fn u16(&mut self, what: &str) -> Result<u16, GraphError> {
        let b = self.take(2, what)?;
        Ok(u16::from_le_bytes([b[0], b[1]]))
    }

    fn u32(&mut self, what: &str) -> Result<u32, GraphError> {
        let b = self.take(4, what)?;
        Ok(u32::from_le_bytes([b[0], b[1], b[2], b[3]]))
    }

    /// Reads a u64 count and narrows it to `usize` with a typed error.
    fn u64_count(&mut self, what: &str) -> Result<usize, GraphError> {
        let b = self.take(8, what)?;
        let n = u64::from_le_bytes([b[0], b[1], b[2], b[3], b[4], b[5], b[6], b[7]]);
        usize::try_from(n)
            .map_err(|_| Self::fail(format!("{what} count {n} overflows size arithmetic")))
    }
}

/// The outcome of [`Graph::apply_delta`]: the updated graph plus the edge
/// sets that genuinely changed — exactly what downstream incremental
/// matching must anchor on (new edges against the updated graph, removed
/// edges against the *pre*-delta graph).
#[derive(Debug, Clone)]
pub struct GraphExtension {
    /// The updated graph.
    pub graph: Graph,
    /// Genuinely new edges as `(a, b)` with `a < b`, sorted, deduplicated.
    pub new_edges: Vec<(NodeId, NodeId)>,
    /// Ids of the delta-added nodes (dense continuation of the base ids).
    pub new_nodes: Vec<NodeId>,
    /// Genuinely removed edges (present in the base, absent afterwards),
    /// as `(a, b)` with `a < b`, sorted, deduplicated. Includes the edges
    /// detached by node removals.
    pub removed_edges: Vec<(NodeId, NodeId)>,
    /// Ids of the tombstone-detached nodes, sorted, deduplicated. Their
    /// detached edges are part of [`GraphExtension::removed_edges`]; the
    /// ids themselves survive in the graph at degree 0.
    pub removed_nodes: Vec<NodeId>,
}

impl Graph {
    /// Applies a churn delta without rebuilding from scratch.
    ///
    /// Only adjacency lists of nodes that gain or lose edges are rewritten
    /// (a linear three-way merge of sorted runs); everything else is
    /// copied. Errors if the delta was built against a different-sized
    /// base or references a type the base does not know.
    pub fn apply_delta(&self, delta: &GraphDelta) -> Result<GraphExtension, GraphError> {
        if delta.base_nodes as usize != self.n_nodes() {
            return Err(GraphError::UnknownNode(delta.base_nodes));
        }
        let t = self.types.len().max(1);
        for &ty in &delta.node_types {
            if ty.index() >= self.types.len() {
                return Err(GraphError::UnknownType(ty.0));
            }
        }

        let n_old = self.n_nodes();
        let n_new = n_old + delta.node_types.len();
        let mut node_types = self.node_types.clone();
        node_types.extend_from_slice(&delta.node_types);
        let mut labels = self.labels.clone();
        labels.extend(delta.node_labels.iter().cloned());

        // Normalise the insertion batch: sorted `(a, b)` with `a < b`,
        // deduped. Base-present edges are retained *after* the doomed set
        // is fixed (net semantics needs the full insert set first).
        let mut new_edges: Vec<(NodeId, NodeId)> = delta.edges.clone();
        new_edges.sort_unstable();
        new_edges.dedup();

        // Doomed set: explicit edge removals plus every base edge incident
        // to a removed node, restricted to edges the base actually has
        // (dangling removals are tolerated), minus edges the same batch
        // re-inserts (net semantics: insertion defines the post-state).
        let mut doomed: Vec<(NodeId, NodeId)> = delta.removed_edges.clone();
        for &v in &delta.removed_nodes {
            for &u in self.neighbors(v) {
                doomed.push(if v.0 < u.0 { (v, u) } else { (u, v) });
            }
        }
        doomed.sort_unstable();
        doomed.dedup();
        doomed.retain(|&(a, b)| self.has_edge(a, b) && new_edges.binary_search(&(a, b)).is_err());

        // Genuinely new edges: absent from the base. Edges touching a
        // delta-added node cannot pre-exist, so only old-old pairs probe.
        new_edges.retain(|&(a, b)| b.index() >= n_old || !self.has_edge(a, b));

        // Degree changes per node; the touched set is exactly the nodes
        // with a non-zero added or removed degree.
        let mut add_deg = vec![0u32; n_new];
        for &(a, b) in &new_edges {
            add_deg[a.index()] += 1;
            add_deg[b.index()] += 1;
        }
        let mut rem_deg = vec![0u32; n_old];
        for &(a, b) in &doomed {
            rem_deg[a.index()] += 1;
            rem_deg[b.index()] += 1;
        }

        // Per-endpoint sorted insertion/removal runs, keyed like
        // adjacency: `(type, id)`. Built by bucketing then sorting each
        // short run.
        let mut additions: Vec<Vec<NodeId>> = vec![Vec::new(); n_new];
        for &(a, b) in &new_edges {
            additions[a.index()].push(b);
            additions[b.index()].push(a);
        }
        for run in additions.iter_mut() {
            run.sort_unstable_by_key(|&u| (node_types[u.index()], u));
        }
        let mut removals: Vec<Vec<NodeId>> = vec![Vec::new(); n_old];
        for &(a, b) in &doomed {
            removals[a.index()].push(b);
            removals[b.index()].push(a);
        }
        for run in removals.iter_mut() {
            run.sort_unstable_by_key(|&u| (node_types[u.index()], u));
        }

        // New offsets, then splice adjacency: verbatim copy for untouched
        // nodes, three-way merge (old − removals + additions) for touched
        // ones, empty-plus-run for new.
        let mut offsets = vec![0u32; n_new + 1];
        for v in 0..n_new {
            let old_deg = if v < n_old {
                self.degree(NodeId(v as u32)) as u32
            } else {
                0
            };
            let removed = if v < n_old { rem_deg[v] } else { 0 };
            offsets[v + 1] = offsets[v] + old_deg + add_deg[v] - removed;
        }
        let mut adjacency: Vec<NodeId> = Vec::with_capacity(offsets[n_new] as usize);
        for (v, add) in additions.iter().enumerate() {
            if v >= n_old {
                adjacency.extend_from_slice(add);
                continue;
            }
            let old = self.neighbors(NodeId(v as u32));
            let rem = &removals[v];
            if add.is_empty() && rem.is_empty() {
                adjacency.extend_from_slice(old);
                continue;
            }
            // Three-way merge of `(type, id)`-sorted runs: every removal
            // entry occurs in `old` exactly once (doomed ⊆ base edges) and
            // both are sorted by the same key, so a single skip pointer
            // filters `old` while the additions merge in.
            let (mut i, mut j, mut k) = (0, 0, 0);
            loop {
                while i < old.len() && k < rem.len() && old[i] == rem[k] {
                    i += 1;
                    k += 1;
                }
                match (i < old.len(), j < add.len()) {
                    (false, false) => break,
                    (true, false) => {
                        adjacency.push(old[i]);
                        i += 1;
                    }
                    (false, true) => {
                        adjacency.push(add[j]);
                        j += 1;
                    }
                    (true, true) => {
                        let ka = (node_types[old[i].index()], old[i]);
                        let kb = (node_types[add[j].index()], add[j]);
                        if ka <= kb {
                            adjacency.push(old[i]);
                            i += 1;
                        } else {
                            adjacency.push(add[j]);
                            j += 1;
                        }
                    }
                }
            }
        }

        // Per-type node lists: removals are tombstones (ids survive), and
        // new ids exceed all old ids, so appending each type's newcomers
        // after its existing (ascending) run keeps the invariant.
        let mut type_offsets = vec![0u32; t + 1];
        for i in 0..t {
            let added = delta.node_types.iter().filter(|ty| ty.index() == i).count() as u32;
            type_offsets[i + 1] =
                type_offsets[i] + (self.type_offsets[i + 1] - self.type_offsets[i]) + added;
        }
        let mut type_nodes: Vec<NodeId> = Vec::with_capacity(n_new);
        for i in 0..t {
            let (s, e) = (
                self.type_offsets[i] as usize,
                self.type_offsets[i + 1] as usize,
            );
            type_nodes.extend_from_slice(&self.type_nodes[s..e]);
            for (j, ty) in delta.node_types.iter().enumerate() {
                if ty.index() == i {
                    type_nodes.push(NodeId((n_old + j) as u32));
                }
            }
        }

        // Edge-type statistics pick up the new edges and shed the doomed.
        let mut edge_type_counts = self.edge_type_counts.clone();
        for &(a, b) in &new_edges {
            let (ta, tb) = (node_types[a.index()], node_types[b.index()]);
            let (lo, hi) = if ta <= tb { (ta, tb) } else { (tb, ta) };
            edge_type_counts[lo.index() * t + hi.index()] += 1;
        }
        for &(a, b) in &doomed {
            let (ta, tb) = (node_types[a.index()], node_types[b.index()]);
            let (lo, hi) = if ta <= tb { (ta, tb) } else { (tb, ta) };
            edge_type_counts[lo.index() * t + hi.index()] -= 1;
        }

        let graph = Graph {
            types: self.types.clone(),
            node_types,
            labels,
            offsets,
            adjacency,
            type_offsets,
            type_nodes,
            edge_type_counts,
            n_edges: self.n_edges + new_edges.len() as u64 - doomed.len() as u64,
        };
        let new_nodes = (n_old..n_new).map(|v| NodeId(v as u32)).collect();
        let mut removed_nodes = delta.removed_nodes.clone();
        removed_nodes.sort_unstable();
        removed_nodes.dedup();
        Ok(GraphExtension {
            graph,
            new_edges,
            new_nodes,
            removed_edges: doomed,
            removed_nodes,
        })
    }
}

#[cfg(test)]
mod codec_tests {
    use super::*;
    use crate::GraphBuilder;

    fn base() -> Graph {
        let mut b = GraphBuilder::new();
        let user = b.add_type("user");
        let school = b.add_type("school");
        let s = b.add_node(school, "s0");
        for i in 0..4 {
            let u = b.add_node(user, format!("u{i}"));
            b.add_edge(u, s).unwrap();
        }
        b.build()
    }

    fn busy_delta(g: &Graph) -> GraphDelta {
        let mut d = GraphDelta::for_graph(g);
        let u = d.add_node(TypeId(0), "new-user");
        let v = d.add_node(TypeId(1), "new-school ✓ unicode");
        d.add_edge(u, v).unwrap();
        d.add_edge(NodeId(1), v).unwrap();
        d.remove_edge(NodeId(2), NodeId(0)).unwrap();
        d.remove_node(NodeId(3)).unwrap();
        d
    }

    #[test]
    fn roundtrips_bitwise() {
        let g = base();
        for d in [GraphDelta::for_graph(&g), busy_delta(&g)] {
            let bytes = d.to_bytes().unwrap();
            let back = GraphDelta::from_bytes(&bytes).unwrap();
            assert_eq!(back, d);
            // And the re-encoding is byte-identical (canonical form).
            assert_eq!(back.to_bytes().unwrap(), bytes);
        }
    }

    #[test]
    fn rejects_every_truncation() {
        let bytes = busy_delta(&base()).to_bytes().unwrap();
        for cut in 0..bytes.len() {
            assert!(
                GraphDelta::from_bytes(&bytes[..cut]).is_err(),
                "prefix of {cut} bytes decoded"
            );
        }
    }

    #[test]
    fn rejects_trailing_garbage() {
        let mut bytes = busy_delta(&base()).to_bytes().unwrap();
        bytes.push(0);
        assert!(GraphDelta::from_bytes(&bytes).is_err());
    }

    #[test]
    fn hostile_counts_cannot_wrap() {
        // Patch the edge count (after header + node section) to 2^61:
        // the 8-byte product wraps with unchecked arithmetic.
        let d = {
            let g = base();
            let mut d = GraphDelta::for_graph(&g);
            d.add_edge(NodeId(0), NodeId(1)).unwrap();
            d
        };
        let mut bytes = d.to_bytes().unwrap();
        let off = 4 + 2 + 4 + 4; // magic, version, base_nodes, n_new (0 new nodes)
        bytes[off..off + 8].copy_from_slice(&(1u64 << 61).to_le_bytes());
        assert!(matches!(
            GraphDelta::from_bytes(&bytes),
            Err(GraphError::Parse { .. })
        ));
    }

    #[test]
    fn decoded_delta_applies_identically() {
        let g = base();
        let d = busy_delta(&g);
        let bytes = d.to_bytes().unwrap();
        let back = GraphDelta::from_bytes(&bytes).unwrap();
        let a = g.apply_delta(&d).unwrap();
        let b = g.apply_delta(&back).unwrap();
        assert_eq!(a.new_edges, b.new_edges);
        assert_eq!(a.removed_edges, b.removed_edges);
        assert_eq!(a.new_nodes, b.new_nodes);
        assert_eq!(a.graph.n_edges(), b.graph.n_edges());
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::GraphBuilder;

    fn base() -> Graph {
        let mut b = GraphBuilder::new();
        let user = b.add_type("user");
        let school = b.add_type("school");
        let major = b.add_type("major");
        let s = b.add_node(school, "s0");
        let m = b.add_node(major, "m0");
        for i in 0..5 {
            let u = b.add_node(user, format!("u{i}"));
            b.add_edge(u, s).unwrap();
            if i % 2 == 0 {
                b.add_edge(u, m).unwrap();
            }
        }
        b.build()
    }

    /// Rebuild-from-scratch reference: the final edge set under the net
    /// semantics — `(base ∖ doomed) ∪ inserted`, where node removals
    /// expand to their base-incident edges.
    fn rebuilt(g: &Graph, delta: &GraphDelta) -> Graph {
        let mut b = GraphBuilder::new();
        for i in 0..g.types().len() {
            b.add_type(g.types().name(TypeId(i as u16)).unwrap());
        }
        for v in g.nodes() {
            b.add_node(g.node_type(v), g.label(v));
        }
        for (i, &ty) in delta.node_types.iter().enumerate() {
            b.add_node(ty, delta.node_labels[i].clone());
        }
        let norm = |a: NodeId, bb: NodeId| if a.0 < bb.0 { (a, bb) } else { (bb, a) };
        let mut doomed: Vec<(NodeId, NodeId)> = delta
            .removed_edges
            .iter()
            .map(|&(a, bb)| norm(a, bb))
            .collect();
        for &v in &delta.removed_nodes {
            for &u in g.neighbors(v) {
                doomed.push(norm(v, u));
            }
        }
        let mut inserted: Vec<(NodeId, NodeId)> =
            delta.edges.iter().map(|&(a, bb)| norm(a, bb)).collect();
        inserted.sort_unstable();
        inserted.dedup();
        let mut final_edges: Vec<(NodeId, NodeId)> = g
            .edges()
            .filter(|e| !doomed.contains(e))
            .chain(inserted.iter().copied().filter(|&(a, bb)| {
                bb.index() >= g.n_nodes() || doomed.contains(&(a, bb)) || !g.has_edge(a, bb)
            }))
            .collect();
        final_edges.sort_unstable();
        final_edges.dedup();
        for (a, bb) in final_edges {
            b.add_edge(a, bb).unwrap();
        }
        b.build()
    }

    fn assert_same(a: &Graph, b: &Graph) {
        assert_eq!(a.n_nodes(), b.n_nodes());
        assert_eq!(a.n_edges(), b.n_edges());
        for v in a.nodes() {
            assert_eq!(a.node_type(v), b.node_type(v));
            assert_eq!(a.label(v), b.label(v));
            assert_eq!(a.neighbors(v), b.neighbors(v), "adjacency of {v}");
        }
        for ty in 0..a.n_types() as u16 {
            assert_eq!(a.nodes_of_type(TypeId(ty)), b.nodes_of_type(TypeId(ty)));
            for ty2 in 0..a.n_types() as u16 {
                assert_eq!(
                    a.edge_type_count(TypeId(ty), TypeId(ty2)),
                    b.edge_type_count(TypeId(ty), TypeId(ty2))
                );
            }
        }
    }

    #[test]
    fn extension_matches_full_rebuild() {
        let g = base();
        let user = g.types().id("user").unwrap();
        let school = g.types().id("school").unwrap();
        let mut d = GraphDelta::for_graph(&g);
        let u_new = d.add_node(user, "u-new");
        let s_new = d.add_node(school, "s-new");
        d.add_edge(u_new, s_new).unwrap();
        d.add_edge(u_new, NodeId(0)).unwrap(); // new user into old school
        d.add_edge(NodeId(2), s_new).unwrap(); // old user into new school
        d.add_edge(NodeId(3), NodeId(1)).unwrap(); // old-old, new edge
        let ext = g.apply_delta(&d).unwrap();
        assert_same(&ext.graph, &rebuilt(&g, &d));
        assert_eq!(ext.new_nodes, vec![u_new, s_new]);
        assert_eq!(ext.new_edges.len(), 4);
        assert!(ext.removed_edges.is_empty());
    }

    #[test]
    fn duplicate_and_existing_edges_are_dropped() {
        let g = base();
        let mut d = GraphDelta::for_graph(&g);
        // u0 (node 2) — s0 (node 0) already exists in the base.
        d.add_edge(NodeId(2), NodeId(0)).unwrap();
        d.add_edge(NodeId(3), NodeId(1)).unwrap();
        d.add_edge(NodeId(1), NodeId(3)).unwrap(); // duplicate, flipped
        let ext = g.apply_delta(&d).unwrap();
        assert_eq!(ext.new_edges, vec![(NodeId(1), NodeId(3))]);
        assert_eq!(ext.graph.n_edges(), g.n_edges() + 1);
        assert_same(&ext.graph, &rebuilt(&g, &d));
    }

    #[test]
    fn empty_delta_is_identity() {
        let g = base();
        let d = GraphDelta::for_graph(&g);
        assert!(d.is_empty());
        let ext = g.apply_delta(&d).unwrap();
        assert!(ext.new_edges.is_empty());
        assert!(ext.new_nodes.is_empty());
        assert!(ext.removed_edges.is_empty());
        assert!(ext.removed_nodes.is_empty());
        assert_same(&ext.graph, &g);
    }

    #[test]
    fn nodes_only_delta() {
        let g = base();
        let user = g.types().id("user").unwrap();
        let mut d = GraphDelta::for_graph(&g);
        let lone = d.add_node(user, "loner");
        let ext = g.apply_delta(&d).unwrap();
        assert_eq!(ext.graph.n_nodes(), g.n_nodes() + 1);
        assert_eq!(ext.graph.degree(lone), 0);
        assert!(ext.graph.nodes_of_type(user).contains(&lone));
        assert_same(&ext.graph, &rebuilt(&g, &d));
    }

    #[test]
    fn delta_rejects_bad_edges() {
        let g = base();
        let mut d = GraphDelta::for_graph(&g);
        assert_eq!(
            d.add_edge(NodeId(1), NodeId(1)),
            Err(GraphError::SelfLoop(1))
        );
        assert_eq!(
            d.add_edge(NodeId(1), NodeId(99)),
            Err(GraphError::UnknownNode(99))
        );
        // A node added to the delta is a valid endpoint immediately.
        let user = g.types().id("user").unwrap();
        let u = d.add_node(user, "x");
        assert!(d.add_edge(NodeId(1), u).is_ok());
    }

    #[test]
    fn apply_rejects_mismatched_base_and_unknown_type() {
        let g = base();
        let other = {
            let mut b = GraphBuilder::new();
            let t = b.add_type("user");
            b.add_node(t, "only");
            b.build()
        };
        let d = GraphDelta::for_graph(&other);
        assert!(matches!(g.apply_delta(&d), Err(GraphError::UnknownNode(_))));
        let mut d2 = GraphDelta::for_graph(&g);
        d2.add_node(TypeId(99), "ghost");
        assert!(matches!(
            g.apply_delta(&d2),
            Err(GraphError::UnknownType(99))
        ));
    }

    #[test]
    fn chained_deltas_accumulate() {
        let g = base();
        let user = g.types().id("user").unwrap();
        let mut d1 = GraphDelta::for_graph(&g);
        let u = d1.add_node(user, "u-a");
        d1.add_edge(u, NodeId(0)).unwrap();
        let g1 = g.apply_delta(&d1).unwrap().graph;
        let mut d2 = GraphDelta::for_graph(&g1);
        d2.add_edge(u, NodeId(1)).unwrap();
        let g2 = g1.apply_delta(&d2).unwrap().graph;
        assert_eq!(g2.degree(u), 2);
        assert_eq!(g2.n_edges(), g.n_edges() + 2);
        assert!(g2.has_edge(u, NodeId(0)) && g2.has_edge(u, NodeId(1)));
    }

    // ---- removal-side tests --------------------------------------------

    #[test]
    fn edge_removal_matches_full_rebuild() {
        let g = base();
        let mut d = GraphDelta::for_graph(&g);
        // u0 (node 2) — s0 (node 0) and u0 — m0 (node 1) exist in base.
        d.remove_edge(NodeId(2), NodeId(0)).unwrap();
        d.remove_edge(NodeId(1), NodeId(2)).unwrap();
        let ext = g.apply_delta(&d).unwrap();
        assert_eq!(
            ext.removed_edges,
            vec![(NodeId(0), NodeId(2)), (NodeId(1), NodeId(2))]
        );
        assert!(ext.new_edges.is_empty());
        assert_eq!(ext.graph.n_edges(), g.n_edges() - 2);
        assert_eq!(ext.graph.degree(NodeId(2)), 0);
        assert!(!ext.graph.has_edge(NodeId(2), NodeId(0)));
        assert_same(&ext.graph, &rebuilt(&g, &d));
    }

    #[test]
    fn dangling_and_duplicate_removals_are_tolerated() {
        let g = base();
        let mut d = GraphDelta::for_graph(&g);
        // u0 (node 2) — u1 (node 3): never an edge — dangling removal.
        d.remove_edge(NodeId(2), NodeId(3)).unwrap();
        // The same real edge three times, once flipped.
        d.remove_edge(NodeId(2), NodeId(0)).unwrap();
        d.remove_edge(NodeId(0), NodeId(2)).unwrap();
        d.remove_edge(NodeId(2), NodeId(0)).unwrap();
        let ext = g.apply_delta(&d).unwrap();
        assert_eq!(ext.removed_edges, vec![(NodeId(0), NodeId(2))]);
        assert_eq!(ext.graph.n_edges(), g.n_edges() - 1);
        assert_same(&ext.graph, &rebuilt(&g, &d));
    }

    #[test]
    fn node_removal_is_a_tombstone_detach() {
        let g = base();
        let user = g.types().id("user").unwrap();
        let mut d = GraphDelta::for_graph(&g);
        // Node 2 (u0) has edges to s0 and m0.
        d.remove_node(NodeId(2)).unwrap();
        let ext = g.apply_delta(&d).unwrap();
        assert_eq!(
            ext.removed_edges,
            vec![(NodeId(0), NodeId(2)), (NodeId(1), NodeId(2))]
        );
        assert_eq!(ext.removed_nodes, vec![NodeId(2)]);
        // Tombstone: the id, label and type survive at degree 0.
        assert_eq!(ext.graph.n_nodes(), g.n_nodes());
        assert_eq!(ext.graph.degree(NodeId(2)), 0);
        assert_eq!(ext.graph.label(NodeId(2)), "u0");
        assert!(ext.graph.nodes_of_type(user).contains(&NodeId(2)));
        assert_same(&ext.graph, &rebuilt(&g, &d));
    }

    #[test]
    fn removing_a_dangling_node_is_a_noop() {
        let g = base();
        let user = g.types().id("user").unwrap();
        let mut d0 = GraphDelta::for_graph(&g);
        let lone = d0.add_node(user, "loner");
        let g1 = g.apply_delta(&d0).unwrap().graph;
        let mut d1 = GraphDelta::for_graph(&g1);
        d1.remove_node(lone).unwrap();
        // Removing an edgeless node and a node twice are both fine.
        d1.remove_node(lone).unwrap();
        let ext = g1.apply_delta(&d1).unwrap();
        assert!(ext.removed_edges.is_empty());
        assert_eq!(ext.removed_nodes, vec![lone]);
        assert_same(&ext.graph, &g1);
    }

    #[test]
    fn remove_then_reinsert_in_one_batch_is_net_zero() {
        let g = base();
        let mut d = GraphDelta::for_graph(&g);
        // u0 (node 2) — s0 (node 0) is a base edge: removing and
        // re-inserting it in the same batch nets to "still there", and
        // neither change set reports it.
        d.remove_edge(NodeId(2), NodeId(0)).unwrap();
        d.add_edge(NodeId(2), NodeId(0)).unwrap();
        let ext = g.apply_delta(&d).unwrap();
        assert!(ext.new_edges.is_empty());
        assert!(ext.removed_edges.is_empty());
        assert_same(&ext.graph, &g);
        assert_same(&ext.graph, &rebuilt(&g, &d));
    }

    #[test]
    fn node_removal_with_reinserted_edge_in_one_batch() {
        let g = base();
        let mut d = GraphDelta::for_graph(&g);
        // Detach u0 (node 2) but keep (insert) its school edge in the same
        // batch: the major edge goes, the school edge survives (net).
        d.remove_node(NodeId(2)).unwrap();
        d.add_edge(NodeId(2), NodeId(0)).unwrap();
        let ext = g.apply_delta(&d).unwrap();
        assert_eq!(ext.removed_edges, vec![(NodeId(1), NodeId(2))]);
        assert!(ext.new_edges.is_empty());
        assert!(ext.graph.has_edge(NodeId(2), NodeId(0)));
        assert!(!ext.graph.has_edge(NodeId(2), NodeId(1)));
        assert_same(&ext.graph, &rebuilt(&g, &d));
    }

    #[test]
    fn mixed_insert_and_delete_batch_matches_rebuild() {
        let g = base();
        let user = g.types().id("user").unwrap();
        let mut d = GraphDelta::for_graph(&g);
        let nu = d.add_node(user, "u-new");
        d.add_edge(nu, NodeId(0)).unwrap();
        d.add_edge(NodeId(3), NodeId(1)).unwrap();
        d.remove_edge(NodeId(4), NodeId(0)).unwrap();
        d.remove_node(NodeId(6)).unwrap();
        let ext = g.apply_delta(&d).unwrap();
        assert_eq!(ext.new_edges.len(), 2);
        assert!(!ext.removed_edges.is_empty());
        assert_same(&ext.graph, &rebuilt(&g, &d));
        // Churn round-trip: reinsert what was removed, remove what was
        // added — back to the base graph exactly.
        let g1 = ext.graph.clone();
        let mut back = GraphDelta::for_graph(&g1);
        for &(a, b) in &ext.removed_edges {
            back.add_edge(a, b).unwrap();
        }
        for &(a, b) in &ext.new_edges {
            back.remove_edge(a, b).unwrap();
        }
        let ext2 = g1.apply_delta(&back).unwrap();
        for v in g.nodes() {
            assert_eq!(ext2.graph.neighbors(v), g.neighbors(v));
        }
        assert_eq!(ext2.graph.n_edges(), g.n_edges());
    }

    #[test]
    fn removal_rejects_bad_targets() {
        let g = base();
        let mut d = GraphDelta::for_graph(&g);
        assert_eq!(
            d.remove_edge(NodeId(1), NodeId(1)),
            Err(GraphError::SelfLoop(1))
        );
        assert_eq!(
            d.remove_edge(NodeId(1), NodeId(99)),
            Err(GraphError::UnknownNode(99))
        );
        assert_eq!(d.remove_node(NodeId(99)), Err(GraphError::UnknownNode(99)));
        // Delta-added nodes are not removable (no base edges to detach).
        let user = g.types().id("user").unwrap();
        let u = d.add_node(user, "x");
        assert_eq!(d.remove_node(u), Err(GraphError::UnknownNode(u.0)));
        assert_eq!(
            d.remove_edge(NodeId(1), u),
            Err(GraphError::UnknownNode(u.0))
        );
    }
}

//! Incremental graph growth: [`GraphDelta`] batches of node/edge
//! insertions and a CSR *extension* path that avoids the full rebuild of
//! [`crate::GraphBuilder::build`].
//!
//! The object graph is immutable CSR for matching speed, which makes naive
//! updates O(|V| + |E|) re-sorts. [`Graph::apply_delta`] instead produces
//! the extended graph by splicing: untouched adjacency lists are copied
//! verbatim (they are already `(type, id)`-sorted), and only the lists of
//! nodes gaining edges are merged with their sorted additions. Per-type
//! node lists stay sorted for free because new node ids are larger than
//! every existing id. The result is indistinguishable from rebuilding from
//! scratch (asserted by tests) at a fraction of the cost — the substrate
//! for the delta-driven matching/index/serving pipeline upstream.

use crate::csr::Graph;
use crate::{GraphError, NodeId, TypeId};

/// A batch of insertions against a fixed base graph: new nodes (each with
/// a type already registered in the base) and new undirected edges among
/// old and new nodes.
///
/// Deltas are constructed against a specific base via
/// [`GraphDelta::for_graph`] so node-id assignment matches the extended
/// graph. Edges already present in the base, and duplicates within the
/// delta, are tolerated and dropped during [`Graph::apply_delta`].
#[derive(Debug, Clone, Default)]
pub struct GraphDelta {
    base_nodes: u32,
    node_types: Vec<TypeId>,
    node_labels: Vec<String>,
    edges: Vec<(NodeId, NodeId)>,
}

impl GraphDelta {
    /// Creates an empty delta against `base` (ids of nodes added here
    /// continue the base graph's dense id space).
    pub fn for_graph(base: &Graph) -> Self {
        GraphDelta {
            base_nodes: base.n_nodes() as u32,
            node_types: Vec::new(),
            node_labels: Vec::new(),
            edges: Vec::new(),
        }
    }

    /// Adds a node of an existing type; returns the id it will have in the
    /// extended graph.
    pub fn add_node(&mut self, ty: TypeId, label: impl Into<String>) -> NodeId {
        let id = NodeId(self.base_nodes + self.node_types.len() as u32);
        self.node_types.push(ty);
        self.node_labels.push(label.into());
        id
    }

    /// Adds an undirected edge between old and/or delta-added nodes.
    /// Self-loops and out-of-range endpoints are rejected eagerly.
    pub fn add_edge(&mut self, a: NodeId, b: NodeId) -> Result<(), GraphError> {
        if a == b {
            return Err(GraphError::SelfLoop(a.0));
        }
        let n = self.base_nodes + self.node_types.len() as u32;
        for v in [a, b] {
            if v.0 >= n {
                return Err(GraphError::UnknownNode(v.0));
            }
        }
        self.edges.push(if a.0 < b.0 { (a, b) } else { (b, a) });
        Ok(())
    }

    /// Number of nodes this delta adds.
    pub fn n_new_nodes(&self) -> usize {
        self.node_types.len()
    }

    /// Number of edge insertions recorded (before deduplication).
    pub fn n_edge_insertions(&self) -> usize {
        self.edges.len()
    }

    /// Whether the delta carries no insertions at all.
    pub fn is_empty(&self) -> bool {
        self.node_types.is_empty() && self.edges.is_empty()
    }

    /// Types of the delta-added nodes, in id order.
    pub fn new_node_types(&self) -> &[TypeId] {
        &self.node_types
    }
}

/// The outcome of [`Graph::apply_delta`]: the extended graph plus the
/// edges that were genuinely new (deduplicated, absent from the base) —
/// exactly the set downstream incremental matching must anchor on.
#[derive(Debug, Clone)]
pub struct GraphExtension {
    /// The extended graph.
    pub graph: Graph,
    /// Genuinely new edges as `(a, b)` with `a < b`, sorted, deduplicated.
    pub new_edges: Vec<(NodeId, NodeId)>,
    /// Ids of the delta-added nodes (dense continuation of the base ids).
    pub new_nodes: Vec<NodeId>,
}

impl Graph {
    /// Extends the graph with a delta without rebuilding from scratch.
    ///
    /// Only adjacency lists of nodes that gain edges are rewritten (a
    /// linear merge of two sorted runs); everything else is copied. Errors
    /// if the delta was built against a different-sized base, references a
    /// type the base does not know, or contains an invalid edge.
    pub fn apply_delta(&self, delta: &GraphDelta) -> Result<GraphExtension, GraphError> {
        if delta.base_nodes as usize != self.n_nodes() {
            return Err(GraphError::UnknownNode(delta.base_nodes));
        }
        let t = self.types.len().max(1);
        for &ty in &delta.node_types {
            if ty.index() >= self.types.len() {
                return Err(GraphError::UnknownType(ty.0));
            }
        }

        let n_old = self.n_nodes();
        let n_new = n_old + delta.node_types.len();
        let mut node_types = self.node_types.clone();
        node_types.extend_from_slice(&delta.node_types);
        let mut labels = self.labels.clone();
        labels.extend(delta.node_labels.iter().cloned());

        // Normalise the edge batch: sorted `(a, b)` with `a < b`, deduped,
        // minus edges the base already has. Edges touching a delta-added
        // node cannot pre-exist, so only old-old pairs need the probe.
        let mut new_edges: Vec<(NodeId, NodeId)> = delta.edges.clone();
        new_edges.sort_unstable();
        new_edges.dedup();
        new_edges.retain(|&(a, b)| b.index() >= n_old || !self.has_edge(a, b));

        // Added degree per node; the touched set is exactly the nodes with
        // a non-zero entry.
        let mut add_deg = vec![0u32; n_new];
        for &(a, b) in &new_edges {
            add_deg[a.index()] += 1;
            add_deg[b.index()] += 1;
        }

        // Per-endpoint sorted insertion runs, keyed like adjacency:
        // `(type, id)`. Built by bucketing then sorting each short run.
        let mut additions: Vec<Vec<NodeId>> = vec![Vec::new(); n_new];
        for &(a, b) in &new_edges {
            additions[a.index()].push(b);
            additions[b.index()].push(a);
        }
        for run in additions.iter_mut() {
            run.sort_unstable_by_key(|&u| (node_types[u.index()], u));
        }

        // New offsets, then splice adjacency: verbatim copy for untouched
        // nodes, two-run merge for touched ones, empty-plus-run for new.
        let mut offsets = vec![0u32; n_new + 1];
        for v in 0..n_new {
            let old_deg = if v < n_old {
                self.degree(NodeId(v as u32))
            } else {
                0
            };
            offsets[v + 1] = offsets[v] + old_deg as u32 + add_deg[v];
        }
        let mut adjacency: Vec<NodeId> = Vec::with_capacity(offsets[n_new] as usize);
        for (v, run) in additions.iter().enumerate() {
            if v >= n_old {
                adjacency.extend_from_slice(run);
                continue;
            }
            let old = self.neighbors(NodeId(v as u32));
            if run.is_empty() {
                adjacency.extend_from_slice(old);
                continue;
            }
            // Merge two `(type, id)`-sorted runs.
            let (mut i, mut j) = (0, 0);
            while i < old.len() && j < run.len() {
                let ka = (node_types[old[i].index()], old[i]);
                let kb = (node_types[run[j].index()], run[j]);
                if ka <= kb {
                    adjacency.push(old[i]);
                    i += 1;
                } else {
                    adjacency.push(run[j]);
                    j += 1;
                }
            }
            adjacency.extend_from_slice(&old[i..]);
            adjacency.extend_from_slice(&run[j..]);
        }

        // Per-type node lists: new ids exceed all old ids, so appending
        // each type's newcomers after its existing (ascending) run keeps
        // the invariant.
        let mut type_offsets = vec![0u32; t + 1];
        for i in 0..t {
            let added = delta.node_types.iter().filter(|ty| ty.index() == i).count() as u32;
            type_offsets[i + 1] =
                type_offsets[i] + (self.type_offsets[i + 1] - self.type_offsets[i]) + added;
        }
        let mut type_nodes: Vec<NodeId> = Vec::with_capacity(n_new);
        for i in 0..t {
            let (s, e) = (
                self.type_offsets[i] as usize,
                self.type_offsets[i + 1] as usize,
            );
            type_nodes.extend_from_slice(&self.type_nodes[s..e]);
            for (j, ty) in delta.node_types.iter().enumerate() {
                if ty.index() == i {
                    type_nodes.push(NodeId((n_old + j) as u32));
                }
            }
        }

        // Edge-type statistics pick up only the new edges.
        let mut edge_type_counts = self.edge_type_counts.clone();
        for &(a, b) in &new_edges {
            let (ta, tb) = (node_types[a.index()], node_types[b.index()]);
            let (lo, hi) = if ta <= tb { (ta, tb) } else { (tb, ta) };
            edge_type_counts[lo.index() * t + hi.index()] += 1;
        }

        let graph = Graph {
            types: self.types.clone(),
            node_types,
            labels,
            offsets,
            adjacency,
            type_offsets,
            type_nodes,
            edge_type_counts,
            n_edges: self.n_edges + new_edges.len() as u64,
        };
        let new_nodes = (n_old..n_new).map(|v| NodeId(v as u32)).collect();
        Ok(GraphExtension {
            graph,
            new_edges,
            new_nodes,
        })
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::GraphBuilder;

    fn base() -> Graph {
        let mut b = GraphBuilder::new();
        let user = b.add_type("user");
        let school = b.add_type("school");
        let major = b.add_type("major");
        let s = b.add_node(school, "s0");
        let m = b.add_node(major, "m0");
        for i in 0..5 {
            let u = b.add_node(user, format!("u{i}"));
            b.add_edge(u, s).unwrap();
            if i % 2 == 0 {
                b.add_edge(u, m).unwrap();
            }
        }
        b.build()
    }

    /// Rebuild-from-scratch reference for an extension.
    fn rebuilt(g: &Graph, delta: &GraphDelta) -> Graph {
        let mut b = GraphBuilder::new();
        for i in 0..g.types().len() {
            b.add_type(g.types().name(TypeId(i as u16)).unwrap());
        }
        for v in g.nodes() {
            b.add_node(g.node_type(v), g.label(v));
        }
        for (i, &ty) in delta.node_types.iter().enumerate() {
            b.add_node(ty, delta.node_labels[i].clone());
        }
        for (a, bb) in g.edges() {
            b.add_edge(a, bb).unwrap();
        }
        for &(a, bb) in &delta.edges {
            b.add_edge(a, bb).unwrap();
        }
        b.build()
    }

    fn assert_same(a: &Graph, b: &Graph) {
        assert_eq!(a.n_nodes(), b.n_nodes());
        assert_eq!(a.n_edges(), b.n_edges());
        for v in a.nodes() {
            assert_eq!(a.node_type(v), b.node_type(v));
            assert_eq!(a.label(v), b.label(v));
            assert_eq!(a.neighbors(v), b.neighbors(v), "adjacency of {v}");
        }
        for ty in 0..a.n_types() as u16 {
            assert_eq!(a.nodes_of_type(TypeId(ty)), b.nodes_of_type(TypeId(ty)));
            for ty2 in 0..a.n_types() as u16 {
                assert_eq!(
                    a.edge_type_count(TypeId(ty), TypeId(ty2)),
                    b.edge_type_count(TypeId(ty), TypeId(ty2))
                );
            }
        }
    }

    #[test]
    fn extension_matches_full_rebuild() {
        let g = base();
        let user = g.types().id("user").unwrap();
        let school = g.types().id("school").unwrap();
        let mut d = GraphDelta::for_graph(&g);
        let u_new = d.add_node(user, "u-new");
        let s_new = d.add_node(school, "s-new");
        d.add_edge(u_new, s_new).unwrap();
        d.add_edge(u_new, NodeId(0)).unwrap(); // new user into old school
        d.add_edge(NodeId(2), s_new).unwrap(); // old user into new school
        d.add_edge(NodeId(3), NodeId(1)).unwrap(); // old-old, new edge
        let ext = g.apply_delta(&d).unwrap();
        assert_same(&ext.graph, &rebuilt(&g, &d));
        assert_eq!(ext.new_nodes, vec![u_new, s_new]);
        assert_eq!(ext.new_edges.len(), 4);
    }

    #[test]
    fn duplicate_and_existing_edges_are_dropped() {
        let g = base();
        let mut d = GraphDelta::for_graph(&g);
        // u0 (node 2) — s0 (node 0) already exists in the base.
        d.add_edge(NodeId(2), NodeId(0)).unwrap();
        d.add_edge(NodeId(3), NodeId(1)).unwrap();
        d.add_edge(NodeId(1), NodeId(3)).unwrap(); // duplicate, flipped
        let ext = g.apply_delta(&d).unwrap();
        assert_eq!(ext.new_edges, vec![(NodeId(1), NodeId(3))]);
        assert_eq!(ext.graph.n_edges(), g.n_edges() + 1);
        assert_same(&ext.graph, &rebuilt(&g, &d));
    }

    #[test]
    fn empty_delta_is_identity() {
        let g = base();
        let d = GraphDelta::for_graph(&g);
        assert!(d.is_empty());
        let ext = g.apply_delta(&d).unwrap();
        assert!(ext.new_edges.is_empty());
        assert!(ext.new_nodes.is_empty());
        assert_same(&ext.graph, &g);
    }

    #[test]
    fn nodes_only_delta() {
        let g = base();
        let user = g.types().id("user").unwrap();
        let mut d = GraphDelta::for_graph(&g);
        let lone = d.add_node(user, "loner");
        let ext = g.apply_delta(&d).unwrap();
        assert_eq!(ext.graph.n_nodes(), g.n_nodes() + 1);
        assert_eq!(ext.graph.degree(lone), 0);
        assert!(ext.graph.nodes_of_type(user).contains(&lone));
        assert_same(&ext.graph, &rebuilt(&g, &d));
    }

    #[test]
    fn delta_rejects_bad_edges() {
        let g = base();
        let mut d = GraphDelta::for_graph(&g);
        assert_eq!(
            d.add_edge(NodeId(1), NodeId(1)),
            Err(GraphError::SelfLoop(1))
        );
        assert_eq!(
            d.add_edge(NodeId(1), NodeId(99)),
            Err(GraphError::UnknownNode(99))
        );
        // A node added to the delta is a valid endpoint immediately.
        let user = g.types().id("user").unwrap();
        let u = d.add_node(user, "x");
        assert!(d.add_edge(NodeId(1), u).is_ok());
    }

    #[test]
    fn apply_rejects_mismatched_base_and_unknown_type() {
        let g = base();
        let other = {
            let mut b = GraphBuilder::new();
            let t = b.add_type("user");
            b.add_node(t, "only");
            b.build()
        };
        let d = GraphDelta::for_graph(&other);
        assert!(matches!(g.apply_delta(&d), Err(GraphError::UnknownNode(_))));
        let mut d2 = GraphDelta::for_graph(&g);
        d2.add_node(TypeId(99), "ghost");
        assert!(matches!(
            g.apply_delta(&d2),
            Err(GraphError::UnknownType(99))
        ));
    }

    #[test]
    fn chained_deltas_accumulate() {
        let g = base();
        let user = g.types().id("user").unwrap();
        let mut d1 = GraphDelta::for_graph(&g);
        let u = d1.add_node(user, "u-a");
        d1.add_edge(u, NodeId(0)).unwrap();
        let g1 = g.apply_delta(&d1).unwrap().graph;
        let mut d2 = GraphDelta::for_graph(&g1);
        d2.add_edge(u, NodeId(1)).unwrap();
        let g2 = g1.apply_delta(&d2).unwrap().graph;
        assert_eq!(g2.degree(u), 2);
        assert_eq!(g2.n_edges(), g.n_edges() + 2);
        assert!(g2.has_edge(u, NodeId(0)) && g2.has_edge(u, NodeId(1)));
    }
}

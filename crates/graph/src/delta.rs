//! Incremental graph churn: [`GraphDelta`] batches of node/edge
//! insertions *and removals*, with a CSR *splicing* path that avoids the
//! full rebuild of [`crate::GraphBuilder::build`].
//!
//! The object graph is immutable CSR for matching speed, which makes naive
//! updates O(|V| + |E|) re-sorts. [`Graph::apply_delta`] instead produces
//! the updated graph by splicing: untouched adjacency lists are copied
//! verbatim (they are already `(type, id)`-sorted), and only the lists of
//! nodes gaining or losing edges are re-merged — a three-way linear merge
//! of the old sorted run minus its sorted removals plus its sorted
//! additions. Per-type node lists stay sorted for free because new node
//! ids are larger than every existing id. The result is indistinguishable
//! from rebuilding from scratch (asserted by tests) at a fraction of the
//! cost — the substrate for the delta-driven matching/index/serving
//! pipeline upstream.
//!
//! ## Removal semantics
//!
//! * Edge removal targets the *pre-batch* graph: removing an edge absent
//!   from the base is tolerated and ignored (dangling CDC events are
//!   common), as are duplicate removals of the same edge.
//! * Node removal is a **tombstone detach**: all of the node's current
//!   edges are removed, but the id survives with degree 0 — dense node
//!   ids are never reused or compacted (compaction is a follow-on, see
//!   ROADMAP). Only base nodes can be removed; removing a node added in
//!   the same delta is rejected eagerly.
//! * A batch is *net*: an edge both removed and inserted in one delta
//!   survives (insertion defines the post-state), and appears in neither
//!   [`GraphExtension::new_edges`] nor [`GraphExtension::removed_edges`].
//!   In particular, edges inserted towards a node that the same batch
//!   removes do land — the removal detaches the node's *current* edges.

use crate::csr::Graph;
use crate::{GraphError, NodeId, TypeId};

/// A batch of churn against a fixed base graph: new nodes (each with a
/// type already registered in the base), new undirected edges among old
/// and new nodes, and removals of base edges and base nodes.
///
/// Deltas are constructed against a specific base via
/// [`GraphDelta::for_graph`] so node-id assignment matches the extended
/// graph. Edges already present in the base, duplicates within the delta,
/// and removals of absent edges are tolerated and dropped during
/// [`Graph::apply_delta`].
#[derive(Debug, Clone, Default)]
pub struct GraphDelta {
    base_nodes: u32,
    node_types: Vec<TypeId>,
    node_labels: Vec<String>,
    edges: Vec<(NodeId, NodeId)>,
    removed_edges: Vec<(NodeId, NodeId)>,
    removed_nodes: Vec<NodeId>,
}

impl GraphDelta {
    /// Creates an empty delta against `base` (ids of nodes added here
    /// continue the base graph's dense id space).
    pub fn for_graph(base: &Graph) -> Self {
        GraphDelta {
            base_nodes: base.n_nodes() as u32,
            ..Default::default()
        }
    }

    /// Adds a node of an existing type; returns the id it will have in the
    /// extended graph.
    pub fn add_node(&mut self, ty: TypeId, label: impl Into<String>) -> NodeId {
        let id = NodeId(self.base_nodes + self.node_types.len() as u32);
        self.node_types.push(ty);
        self.node_labels.push(label.into());
        id
    }

    /// Adds an undirected edge between old and/or delta-added nodes.
    /// Self-loops and out-of-range endpoints are rejected eagerly.
    pub fn add_edge(&mut self, a: NodeId, b: NodeId) -> Result<(), GraphError> {
        if a == b {
            return Err(GraphError::SelfLoop(a.0));
        }
        let n = self.base_nodes + self.node_types.len() as u32;
        for v in [a, b] {
            if v.0 >= n {
                return Err(GraphError::UnknownNode(v.0));
            }
        }
        self.edges.push(if a.0 < b.0 { (a, b) } else { (b, a) });
        Ok(())
    }

    /// Records the removal of an undirected base edge. Both endpoints must
    /// be base nodes (an edge towards a delta-added node cannot pre-exist,
    /// so removing one is meaningless and rejected eagerly). Removing an
    /// edge the base does not have is tolerated at apply time.
    pub fn remove_edge(&mut self, a: NodeId, b: NodeId) -> Result<(), GraphError> {
        if a == b {
            return Err(GraphError::SelfLoop(a.0));
        }
        for v in [a, b] {
            if v.0 >= self.base_nodes {
                return Err(GraphError::UnknownNode(v.0));
            }
        }
        self.removed_edges
            .push(if a.0 < b.0 { (a, b) } else { (b, a) });
        Ok(())
    }

    /// Records the removal of a base node: a *tombstone detach* that drops
    /// every edge the node has in the base graph while keeping its id (at
    /// degree 0). Only base nodes are removable.
    pub fn remove_node(&mut self, v: NodeId) -> Result<(), GraphError> {
        if v.0 >= self.base_nodes {
            return Err(GraphError::UnknownNode(v.0));
        }
        self.removed_nodes.push(v);
        Ok(())
    }

    /// Number of nodes this delta adds.
    pub fn n_new_nodes(&self) -> usize {
        self.node_types.len()
    }

    /// Number of edge insertions recorded (before deduplication).
    pub fn n_edge_insertions(&self) -> usize {
        self.edges.len()
    }

    /// Number of edge removals recorded (before deduplication; node
    /// removals expand to their incident edges at apply time and are not
    /// counted here).
    pub fn n_edge_removals(&self) -> usize {
        self.removed_edges.len()
    }

    /// Number of node removals (tombstone detaches) recorded.
    pub fn n_node_removals(&self) -> usize {
        self.removed_nodes.len()
    }

    /// Whether the delta carries no insertions or removals at all.
    pub fn is_empty(&self) -> bool {
        self.node_types.is_empty()
            && self.edges.is_empty()
            && self.removed_edges.is_empty()
            && self.removed_nodes.is_empty()
    }

    /// Types of the delta-added nodes, in id order.
    pub fn new_node_types(&self) -> &[TypeId] {
        &self.node_types
    }
}

/// The outcome of [`Graph::apply_delta`]: the updated graph plus the edge
/// sets that genuinely changed — exactly what downstream incremental
/// matching must anchor on (new edges against the updated graph, removed
/// edges against the *pre*-delta graph).
#[derive(Debug, Clone)]
pub struct GraphExtension {
    /// The updated graph.
    pub graph: Graph,
    /// Genuinely new edges as `(a, b)` with `a < b`, sorted, deduplicated.
    pub new_edges: Vec<(NodeId, NodeId)>,
    /// Ids of the delta-added nodes (dense continuation of the base ids).
    pub new_nodes: Vec<NodeId>,
    /// Genuinely removed edges (present in the base, absent afterwards),
    /// as `(a, b)` with `a < b`, sorted, deduplicated. Includes the edges
    /// detached by node removals.
    pub removed_edges: Vec<(NodeId, NodeId)>,
    /// Ids of the tombstone-detached nodes, sorted, deduplicated. Their
    /// detached edges are part of [`GraphExtension::removed_edges`]; the
    /// ids themselves survive in the graph at degree 0.
    pub removed_nodes: Vec<NodeId>,
}

impl Graph {
    /// Applies a churn delta without rebuilding from scratch.
    ///
    /// Only adjacency lists of nodes that gain or lose edges are rewritten
    /// (a linear three-way merge of sorted runs); everything else is
    /// copied. Errors if the delta was built against a different-sized
    /// base or references a type the base does not know.
    pub fn apply_delta(&self, delta: &GraphDelta) -> Result<GraphExtension, GraphError> {
        if delta.base_nodes as usize != self.n_nodes() {
            return Err(GraphError::UnknownNode(delta.base_nodes));
        }
        let t = self.types.len().max(1);
        for &ty in &delta.node_types {
            if ty.index() >= self.types.len() {
                return Err(GraphError::UnknownType(ty.0));
            }
        }

        let n_old = self.n_nodes();
        let n_new = n_old + delta.node_types.len();
        let mut node_types = self.node_types.clone();
        node_types.extend_from_slice(&delta.node_types);
        let mut labels = self.labels.clone();
        labels.extend(delta.node_labels.iter().cloned());

        // Normalise the insertion batch: sorted `(a, b)` with `a < b`,
        // deduped. Base-present edges are retained *after* the doomed set
        // is fixed (net semantics needs the full insert set first).
        let mut new_edges: Vec<(NodeId, NodeId)> = delta.edges.clone();
        new_edges.sort_unstable();
        new_edges.dedup();

        // Doomed set: explicit edge removals plus every base edge incident
        // to a removed node, restricted to edges the base actually has
        // (dangling removals are tolerated), minus edges the same batch
        // re-inserts (net semantics: insertion defines the post-state).
        let mut doomed: Vec<(NodeId, NodeId)> = delta.removed_edges.clone();
        for &v in &delta.removed_nodes {
            for &u in self.neighbors(v) {
                doomed.push(if v.0 < u.0 { (v, u) } else { (u, v) });
            }
        }
        doomed.sort_unstable();
        doomed.dedup();
        doomed.retain(|&(a, b)| self.has_edge(a, b) && new_edges.binary_search(&(a, b)).is_err());

        // Genuinely new edges: absent from the base. Edges touching a
        // delta-added node cannot pre-exist, so only old-old pairs probe.
        new_edges.retain(|&(a, b)| b.index() >= n_old || !self.has_edge(a, b));

        // Degree changes per node; the touched set is exactly the nodes
        // with a non-zero added or removed degree.
        let mut add_deg = vec![0u32; n_new];
        for &(a, b) in &new_edges {
            add_deg[a.index()] += 1;
            add_deg[b.index()] += 1;
        }
        let mut rem_deg = vec![0u32; n_old];
        for &(a, b) in &doomed {
            rem_deg[a.index()] += 1;
            rem_deg[b.index()] += 1;
        }

        // Per-endpoint sorted insertion/removal runs, keyed like
        // adjacency: `(type, id)`. Built by bucketing then sorting each
        // short run.
        let mut additions: Vec<Vec<NodeId>> = vec![Vec::new(); n_new];
        for &(a, b) in &new_edges {
            additions[a.index()].push(b);
            additions[b.index()].push(a);
        }
        for run in additions.iter_mut() {
            run.sort_unstable_by_key(|&u| (node_types[u.index()], u));
        }
        let mut removals: Vec<Vec<NodeId>> = vec![Vec::new(); n_old];
        for &(a, b) in &doomed {
            removals[a.index()].push(b);
            removals[b.index()].push(a);
        }
        for run in removals.iter_mut() {
            run.sort_unstable_by_key(|&u| (node_types[u.index()], u));
        }

        // New offsets, then splice adjacency: verbatim copy for untouched
        // nodes, three-way merge (old − removals + additions) for touched
        // ones, empty-plus-run for new.
        let mut offsets = vec![0u32; n_new + 1];
        for v in 0..n_new {
            let old_deg = if v < n_old {
                self.degree(NodeId(v as u32)) as u32
            } else {
                0
            };
            let removed = if v < n_old { rem_deg[v] } else { 0 };
            offsets[v + 1] = offsets[v] + old_deg + add_deg[v] - removed;
        }
        let mut adjacency: Vec<NodeId> = Vec::with_capacity(offsets[n_new] as usize);
        for (v, add) in additions.iter().enumerate() {
            if v >= n_old {
                adjacency.extend_from_slice(add);
                continue;
            }
            let old = self.neighbors(NodeId(v as u32));
            let rem = &removals[v];
            if add.is_empty() && rem.is_empty() {
                adjacency.extend_from_slice(old);
                continue;
            }
            // Three-way merge of `(type, id)`-sorted runs: every removal
            // entry occurs in `old` exactly once (doomed ⊆ base edges) and
            // both are sorted by the same key, so a single skip pointer
            // filters `old` while the additions merge in.
            let (mut i, mut j, mut k) = (0, 0, 0);
            loop {
                while i < old.len() && k < rem.len() && old[i] == rem[k] {
                    i += 1;
                    k += 1;
                }
                match (i < old.len(), j < add.len()) {
                    (false, false) => break,
                    (true, false) => {
                        adjacency.push(old[i]);
                        i += 1;
                    }
                    (false, true) => {
                        adjacency.push(add[j]);
                        j += 1;
                    }
                    (true, true) => {
                        let ka = (node_types[old[i].index()], old[i]);
                        let kb = (node_types[add[j].index()], add[j]);
                        if ka <= kb {
                            adjacency.push(old[i]);
                            i += 1;
                        } else {
                            adjacency.push(add[j]);
                            j += 1;
                        }
                    }
                }
            }
        }

        // Per-type node lists: removals are tombstones (ids survive), and
        // new ids exceed all old ids, so appending each type's newcomers
        // after its existing (ascending) run keeps the invariant.
        let mut type_offsets = vec![0u32; t + 1];
        for i in 0..t {
            let added = delta.node_types.iter().filter(|ty| ty.index() == i).count() as u32;
            type_offsets[i + 1] =
                type_offsets[i] + (self.type_offsets[i + 1] - self.type_offsets[i]) + added;
        }
        let mut type_nodes: Vec<NodeId> = Vec::with_capacity(n_new);
        for i in 0..t {
            let (s, e) = (
                self.type_offsets[i] as usize,
                self.type_offsets[i + 1] as usize,
            );
            type_nodes.extend_from_slice(&self.type_nodes[s..e]);
            for (j, ty) in delta.node_types.iter().enumerate() {
                if ty.index() == i {
                    type_nodes.push(NodeId((n_old + j) as u32));
                }
            }
        }

        // Edge-type statistics pick up the new edges and shed the doomed.
        let mut edge_type_counts = self.edge_type_counts.clone();
        for &(a, b) in &new_edges {
            let (ta, tb) = (node_types[a.index()], node_types[b.index()]);
            let (lo, hi) = if ta <= tb { (ta, tb) } else { (tb, ta) };
            edge_type_counts[lo.index() * t + hi.index()] += 1;
        }
        for &(a, b) in &doomed {
            let (ta, tb) = (node_types[a.index()], node_types[b.index()]);
            let (lo, hi) = if ta <= tb { (ta, tb) } else { (tb, ta) };
            edge_type_counts[lo.index() * t + hi.index()] -= 1;
        }

        let graph = Graph {
            types: self.types.clone(),
            node_types,
            labels,
            offsets,
            adjacency,
            type_offsets,
            type_nodes,
            edge_type_counts,
            n_edges: self.n_edges + new_edges.len() as u64 - doomed.len() as u64,
        };
        let new_nodes = (n_old..n_new).map(|v| NodeId(v as u32)).collect();
        let mut removed_nodes = delta.removed_nodes.clone();
        removed_nodes.sort_unstable();
        removed_nodes.dedup();
        Ok(GraphExtension {
            graph,
            new_edges,
            new_nodes,
            removed_edges: doomed,
            removed_nodes,
        })
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::GraphBuilder;

    fn base() -> Graph {
        let mut b = GraphBuilder::new();
        let user = b.add_type("user");
        let school = b.add_type("school");
        let major = b.add_type("major");
        let s = b.add_node(school, "s0");
        let m = b.add_node(major, "m0");
        for i in 0..5 {
            let u = b.add_node(user, format!("u{i}"));
            b.add_edge(u, s).unwrap();
            if i % 2 == 0 {
                b.add_edge(u, m).unwrap();
            }
        }
        b.build()
    }

    /// Rebuild-from-scratch reference: the final edge set under the net
    /// semantics — `(base ∖ doomed) ∪ inserted`, where node removals
    /// expand to their base-incident edges.
    fn rebuilt(g: &Graph, delta: &GraphDelta) -> Graph {
        let mut b = GraphBuilder::new();
        for i in 0..g.types().len() {
            b.add_type(g.types().name(TypeId(i as u16)).unwrap());
        }
        for v in g.nodes() {
            b.add_node(g.node_type(v), g.label(v));
        }
        for (i, &ty) in delta.node_types.iter().enumerate() {
            b.add_node(ty, delta.node_labels[i].clone());
        }
        let norm = |a: NodeId, bb: NodeId| if a.0 < bb.0 { (a, bb) } else { (bb, a) };
        let mut doomed: Vec<(NodeId, NodeId)> = delta
            .removed_edges
            .iter()
            .map(|&(a, bb)| norm(a, bb))
            .collect();
        for &v in &delta.removed_nodes {
            for &u in g.neighbors(v) {
                doomed.push(norm(v, u));
            }
        }
        let mut inserted: Vec<(NodeId, NodeId)> =
            delta.edges.iter().map(|&(a, bb)| norm(a, bb)).collect();
        inserted.sort_unstable();
        inserted.dedup();
        let mut final_edges: Vec<(NodeId, NodeId)> = g
            .edges()
            .filter(|e| !doomed.contains(e))
            .chain(inserted.iter().copied().filter(|&(a, bb)| {
                bb.index() >= g.n_nodes() || doomed.contains(&(a, bb)) || !g.has_edge(a, bb)
            }))
            .collect();
        final_edges.sort_unstable();
        final_edges.dedup();
        for (a, bb) in final_edges {
            b.add_edge(a, bb).unwrap();
        }
        b.build()
    }

    fn assert_same(a: &Graph, b: &Graph) {
        assert_eq!(a.n_nodes(), b.n_nodes());
        assert_eq!(a.n_edges(), b.n_edges());
        for v in a.nodes() {
            assert_eq!(a.node_type(v), b.node_type(v));
            assert_eq!(a.label(v), b.label(v));
            assert_eq!(a.neighbors(v), b.neighbors(v), "adjacency of {v}");
        }
        for ty in 0..a.n_types() as u16 {
            assert_eq!(a.nodes_of_type(TypeId(ty)), b.nodes_of_type(TypeId(ty)));
            for ty2 in 0..a.n_types() as u16 {
                assert_eq!(
                    a.edge_type_count(TypeId(ty), TypeId(ty2)),
                    b.edge_type_count(TypeId(ty), TypeId(ty2))
                );
            }
        }
    }

    #[test]
    fn extension_matches_full_rebuild() {
        let g = base();
        let user = g.types().id("user").unwrap();
        let school = g.types().id("school").unwrap();
        let mut d = GraphDelta::for_graph(&g);
        let u_new = d.add_node(user, "u-new");
        let s_new = d.add_node(school, "s-new");
        d.add_edge(u_new, s_new).unwrap();
        d.add_edge(u_new, NodeId(0)).unwrap(); // new user into old school
        d.add_edge(NodeId(2), s_new).unwrap(); // old user into new school
        d.add_edge(NodeId(3), NodeId(1)).unwrap(); // old-old, new edge
        let ext = g.apply_delta(&d).unwrap();
        assert_same(&ext.graph, &rebuilt(&g, &d));
        assert_eq!(ext.new_nodes, vec![u_new, s_new]);
        assert_eq!(ext.new_edges.len(), 4);
        assert!(ext.removed_edges.is_empty());
    }

    #[test]
    fn duplicate_and_existing_edges_are_dropped() {
        let g = base();
        let mut d = GraphDelta::for_graph(&g);
        // u0 (node 2) — s0 (node 0) already exists in the base.
        d.add_edge(NodeId(2), NodeId(0)).unwrap();
        d.add_edge(NodeId(3), NodeId(1)).unwrap();
        d.add_edge(NodeId(1), NodeId(3)).unwrap(); // duplicate, flipped
        let ext = g.apply_delta(&d).unwrap();
        assert_eq!(ext.new_edges, vec![(NodeId(1), NodeId(3))]);
        assert_eq!(ext.graph.n_edges(), g.n_edges() + 1);
        assert_same(&ext.graph, &rebuilt(&g, &d));
    }

    #[test]
    fn empty_delta_is_identity() {
        let g = base();
        let d = GraphDelta::for_graph(&g);
        assert!(d.is_empty());
        let ext = g.apply_delta(&d).unwrap();
        assert!(ext.new_edges.is_empty());
        assert!(ext.new_nodes.is_empty());
        assert!(ext.removed_edges.is_empty());
        assert!(ext.removed_nodes.is_empty());
        assert_same(&ext.graph, &g);
    }

    #[test]
    fn nodes_only_delta() {
        let g = base();
        let user = g.types().id("user").unwrap();
        let mut d = GraphDelta::for_graph(&g);
        let lone = d.add_node(user, "loner");
        let ext = g.apply_delta(&d).unwrap();
        assert_eq!(ext.graph.n_nodes(), g.n_nodes() + 1);
        assert_eq!(ext.graph.degree(lone), 0);
        assert!(ext.graph.nodes_of_type(user).contains(&lone));
        assert_same(&ext.graph, &rebuilt(&g, &d));
    }

    #[test]
    fn delta_rejects_bad_edges() {
        let g = base();
        let mut d = GraphDelta::for_graph(&g);
        assert_eq!(
            d.add_edge(NodeId(1), NodeId(1)),
            Err(GraphError::SelfLoop(1))
        );
        assert_eq!(
            d.add_edge(NodeId(1), NodeId(99)),
            Err(GraphError::UnknownNode(99))
        );
        // A node added to the delta is a valid endpoint immediately.
        let user = g.types().id("user").unwrap();
        let u = d.add_node(user, "x");
        assert!(d.add_edge(NodeId(1), u).is_ok());
    }

    #[test]
    fn apply_rejects_mismatched_base_and_unknown_type() {
        let g = base();
        let other = {
            let mut b = GraphBuilder::new();
            let t = b.add_type("user");
            b.add_node(t, "only");
            b.build()
        };
        let d = GraphDelta::for_graph(&other);
        assert!(matches!(g.apply_delta(&d), Err(GraphError::UnknownNode(_))));
        let mut d2 = GraphDelta::for_graph(&g);
        d2.add_node(TypeId(99), "ghost");
        assert!(matches!(
            g.apply_delta(&d2),
            Err(GraphError::UnknownType(99))
        ));
    }

    #[test]
    fn chained_deltas_accumulate() {
        let g = base();
        let user = g.types().id("user").unwrap();
        let mut d1 = GraphDelta::for_graph(&g);
        let u = d1.add_node(user, "u-a");
        d1.add_edge(u, NodeId(0)).unwrap();
        let g1 = g.apply_delta(&d1).unwrap().graph;
        let mut d2 = GraphDelta::for_graph(&g1);
        d2.add_edge(u, NodeId(1)).unwrap();
        let g2 = g1.apply_delta(&d2).unwrap().graph;
        assert_eq!(g2.degree(u), 2);
        assert_eq!(g2.n_edges(), g.n_edges() + 2);
        assert!(g2.has_edge(u, NodeId(0)) && g2.has_edge(u, NodeId(1)));
    }

    // ---- removal-side tests --------------------------------------------

    #[test]
    fn edge_removal_matches_full_rebuild() {
        let g = base();
        let mut d = GraphDelta::for_graph(&g);
        // u0 (node 2) — s0 (node 0) and u0 — m0 (node 1) exist in base.
        d.remove_edge(NodeId(2), NodeId(0)).unwrap();
        d.remove_edge(NodeId(1), NodeId(2)).unwrap();
        let ext = g.apply_delta(&d).unwrap();
        assert_eq!(
            ext.removed_edges,
            vec![(NodeId(0), NodeId(2)), (NodeId(1), NodeId(2))]
        );
        assert!(ext.new_edges.is_empty());
        assert_eq!(ext.graph.n_edges(), g.n_edges() - 2);
        assert_eq!(ext.graph.degree(NodeId(2)), 0);
        assert!(!ext.graph.has_edge(NodeId(2), NodeId(0)));
        assert_same(&ext.graph, &rebuilt(&g, &d));
    }

    #[test]
    fn dangling_and_duplicate_removals_are_tolerated() {
        let g = base();
        let mut d = GraphDelta::for_graph(&g);
        // u0 (node 2) — u1 (node 3): never an edge — dangling removal.
        d.remove_edge(NodeId(2), NodeId(3)).unwrap();
        // The same real edge three times, once flipped.
        d.remove_edge(NodeId(2), NodeId(0)).unwrap();
        d.remove_edge(NodeId(0), NodeId(2)).unwrap();
        d.remove_edge(NodeId(2), NodeId(0)).unwrap();
        let ext = g.apply_delta(&d).unwrap();
        assert_eq!(ext.removed_edges, vec![(NodeId(0), NodeId(2))]);
        assert_eq!(ext.graph.n_edges(), g.n_edges() - 1);
        assert_same(&ext.graph, &rebuilt(&g, &d));
    }

    #[test]
    fn node_removal_is_a_tombstone_detach() {
        let g = base();
        let user = g.types().id("user").unwrap();
        let mut d = GraphDelta::for_graph(&g);
        // Node 2 (u0) has edges to s0 and m0.
        d.remove_node(NodeId(2)).unwrap();
        let ext = g.apply_delta(&d).unwrap();
        assert_eq!(
            ext.removed_edges,
            vec![(NodeId(0), NodeId(2)), (NodeId(1), NodeId(2))]
        );
        assert_eq!(ext.removed_nodes, vec![NodeId(2)]);
        // Tombstone: the id, label and type survive at degree 0.
        assert_eq!(ext.graph.n_nodes(), g.n_nodes());
        assert_eq!(ext.graph.degree(NodeId(2)), 0);
        assert_eq!(ext.graph.label(NodeId(2)), "u0");
        assert!(ext.graph.nodes_of_type(user).contains(&NodeId(2)));
        assert_same(&ext.graph, &rebuilt(&g, &d));
    }

    #[test]
    fn removing_a_dangling_node_is_a_noop() {
        let g = base();
        let user = g.types().id("user").unwrap();
        let mut d0 = GraphDelta::for_graph(&g);
        let lone = d0.add_node(user, "loner");
        let g1 = g.apply_delta(&d0).unwrap().graph;
        let mut d1 = GraphDelta::for_graph(&g1);
        d1.remove_node(lone).unwrap();
        // Removing an edgeless node and a node twice are both fine.
        d1.remove_node(lone).unwrap();
        let ext = g1.apply_delta(&d1).unwrap();
        assert!(ext.removed_edges.is_empty());
        assert_eq!(ext.removed_nodes, vec![lone]);
        assert_same(&ext.graph, &g1);
    }

    #[test]
    fn remove_then_reinsert_in_one_batch_is_net_zero() {
        let g = base();
        let mut d = GraphDelta::for_graph(&g);
        // u0 (node 2) — s0 (node 0) is a base edge: removing and
        // re-inserting it in the same batch nets to "still there", and
        // neither change set reports it.
        d.remove_edge(NodeId(2), NodeId(0)).unwrap();
        d.add_edge(NodeId(2), NodeId(0)).unwrap();
        let ext = g.apply_delta(&d).unwrap();
        assert!(ext.new_edges.is_empty());
        assert!(ext.removed_edges.is_empty());
        assert_same(&ext.graph, &g);
        assert_same(&ext.graph, &rebuilt(&g, &d));
    }

    #[test]
    fn node_removal_with_reinserted_edge_in_one_batch() {
        let g = base();
        let mut d = GraphDelta::for_graph(&g);
        // Detach u0 (node 2) but keep (insert) its school edge in the same
        // batch: the major edge goes, the school edge survives (net).
        d.remove_node(NodeId(2)).unwrap();
        d.add_edge(NodeId(2), NodeId(0)).unwrap();
        let ext = g.apply_delta(&d).unwrap();
        assert_eq!(ext.removed_edges, vec![(NodeId(1), NodeId(2))]);
        assert!(ext.new_edges.is_empty());
        assert!(ext.graph.has_edge(NodeId(2), NodeId(0)));
        assert!(!ext.graph.has_edge(NodeId(2), NodeId(1)));
        assert_same(&ext.graph, &rebuilt(&g, &d));
    }

    #[test]
    fn mixed_insert_and_delete_batch_matches_rebuild() {
        let g = base();
        let user = g.types().id("user").unwrap();
        let mut d = GraphDelta::for_graph(&g);
        let nu = d.add_node(user, "u-new");
        d.add_edge(nu, NodeId(0)).unwrap();
        d.add_edge(NodeId(3), NodeId(1)).unwrap();
        d.remove_edge(NodeId(4), NodeId(0)).unwrap();
        d.remove_node(NodeId(6)).unwrap();
        let ext = g.apply_delta(&d).unwrap();
        assert_eq!(ext.new_edges.len(), 2);
        assert!(!ext.removed_edges.is_empty());
        assert_same(&ext.graph, &rebuilt(&g, &d));
        // Churn round-trip: reinsert what was removed, remove what was
        // added — back to the base graph exactly.
        let g1 = ext.graph.clone();
        let mut back = GraphDelta::for_graph(&g1);
        for &(a, b) in &ext.removed_edges {
            back.add_edge(a, b).unwrap();
        }
        for &(a, b) in &ext.new_edges {
            back.remove_edge(a, b).unwrap();
        }
        let ext2 = g1.apply_delta(&back).unwrap();
        for v in g.nodes() {
            assert_eq!(ext2.graph.neighbors(v), g.neighbors(v));
        }
        assert_eq!(ext2.graph.n_edges(), g.n_edges());
    }

    #[test]
    fn removal_rejects_bad_targets() {
        let g = base();
        let mut d = GraphDelta::for_graph(&g);
        assert_eq!(
            d.remove_edge(NodeId(1), NodeId(1)),
            Err(GraphError::SelfLoop(1))
        );
        assert_eq!(
            d.remove_edge(NodeId(1), NodeId(99)),
            Err(GraphError::UnknownNode(99))
        );
        assert_eq!(d.remove_node(NodeId(99)), Err(GraphError::UnknownNode(99)));
        // Delta-added nodes are not removable (no base edges to detach).
        let user = g.types().id("user").unwrap();
        let u = d.add_node(user, "x");
        assert_eq!(d.remove_node(u), Err(GraphError::UnknownNode(u.0)));
        assert_eq!(
            d.remove_edge(NodeId(1), u),
            Err(GraphError::UnknownNode(u.0))
        );
    }
}

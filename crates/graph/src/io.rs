//! Plain-text persistence for typed object graphs.
//!
//! The format is line-oriented TSV with three record kinds:
//!
//! ```text
//! # comment
//! T <type-id> <type-name>
//! N <node-id> <type-id> <label…>
//! E <node-id> <node-id>
//! ```
//!
//! Type and node ids must be dense and in increasing order, matching how
//! [`crate::GraphBuilder`] hands them out, so that a dump can be reloaded
//! into identical ids. Labels may contain spaces (everything after the third
//! field); tabs within labels are not supported.

use crate::{Graph, GraphBuilder, GraphError, NodeId};
use std::io::{BufRead, Write};

/// Serialises a graph to the TSV format described in the module docs.
pub fn write_tsv<W: Write>(g: &Graph, mut w: W) -> Result<(), GraphError> {
    writeln!(
        w,
        "# typed object graph: {} nodes, {} edges",
        g.n_nodes(),
        g.n_edges()
    )?;
    for (id, name) in g.types().iter() {
        writeln!(w, "T\t{}\t{}", id.0, name)?;
    }
    for v in g.nodes() {
        writeln!(w, "N\t{}\t{}\t{}", v.0, g.node_type(v).0, g.label(v))?;
    }
    for (a, b) in g.edges() {
        writeln!(w, "E\t{}\t{}", a.0, b.0)?;
    }
    Ok(())
}

/// Loads a graph from the TSV format described in the module docs.
pub fn read_tsv<R: BufRead>(r: R) -> Result<Graph, GraphError> {
    let mut b = GraphBuilder::new();
    let mut next_type = 0u16;
    let mut next_node = 0u32;
    for (i, line) in r.lines().enumerate() {
        let lineno = i + 1;
        let line = line?;
        let line = line.trim_end();
        if line.is_empty() || line.starts_with('#') {
            continue;
        }
        let mut fields = line.splitn(4, '\t');
        let kind = fields.next().unwrap_or("");
        let err = |message: String| GraphError::Parse {
            line: lineno,
            message,
        };
        match kind {
            "T" => {
                let id: u16 = parse_field(fields.next(), lineno, "type id")?;
                let name = fields
                    .next()
                    .ok_or_else(|| err("missing type name".into()))?;
                if id != next_type {
                    return Err(err(format!(
                        "type ids must be dense, expected {next_type} got {id}"
                    )));
                }
                next_type += 1;
                b.add_type(name);
            }
            "N" => {
                let id: u32 = parse_field(fields.next(), lineno, "node id")?;
                let ty: u16 = parse_field(fields.next(), lineno, "node type")?;
                let label = fields.next().unwrap_or("");
                if id != next_node {
                    return Err(err(format!(
                        "node ids must be dense, expected {next_node} got {id}"
                    )));
                }
                if ty as usize >= b.types().len() {
                    return Err(GraphError::UnknownType(ty));
                }
                next_node += 1;
                b.add_node(crate::TypeId(ty), label);
            }
            "E" => {
                let a: u32 = parse_field(fields.next(), lineno, "edge endpoint")?;
                let c: u32 = parse_field(fields.next(), lineno, "edge endpoint")?;
                b.add_edge(NodeId(a), NodeId(c))?;
            }
            other => {
                return Err(err(format!("unknown record kind {other:?}")));
            }
        }
    }
    Ok(b.build())
}

fn parse_field<T: std::str::FromStr>(
    field: Option<&str>,
    line: usize,
    what: &str,
) -> Result<T, GraphError> {
    field
        .ok_or_else(|| GraphError::Parse {
            line,
            message: format!("missing {what}"),
        })?
        .parse()
        .map_err(|_| GraphError::Parse {
            line,
            message: format!("invalid {what}"),
        })
}

/// Writes a graph to a file path.
pub fn save_tsv(g: &Graph, path: impl AsRef<std::path::Path>) -> Result<(), GraphError> {
    let f = std::fs::File::create(path)?;
    write_tsv(g, std::io::BufWriter::new(f))
}

/// Reads a graph from a file path.
pub fn load_tsv(path: impl AsRef<std::path::Path>) -> Result<Graph, GraphError> {
    let f = std::fs::File::open(path)?;
    read_tsv(std::io::BufReader::new(f))
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::GraphBuilder;

    fn sample() -> Graph {
        let mut b = GraphBuilder::new();
        let user = b.add_type("user");
        let addr = b.add_type("address");
        let alice = b.add_node(user, "Alice");
        let bob = b.add_node(user, "Bob");
        let green = b.add_node(addr, "123 Green St");
        b.add_edge(alice, green).unwrap();
        b.add_edge(bob, green).unwrap();
        b.build()
    }

    #[test]
    fn roundtrip() {
        let g = sample();
        let mut buf = Vec::new();
        write_tsv(&g, &mut buf).unwrap();
        let g2 = read_tsv(std::io::Cursor::new(&buf)).unwrap();
        assert_eq!(g2.n_nodes(), g.n_nodes());
        assert_eq!(g2.n_edges(), g.n_edges());
        for v in g.nodes() {
            assert_eq!(g2.label(v), g.label(v));
            assert_eq!(g2.node_type(v), g.node_type(v));
        }
        for (a, b) in g.edges() {
            assert!(g2.has_edge(a, b));
        }
    }

    #[test]
    fn labels_with_spaces_survive() {
        let g = sample();
        let mut buf = Vec::new();
        write_tsv(&g, &mut buf).unwrap();
        let g2 = read_tsv(std::io::Cursor::new(&buf)).unwrap();
        assert_eq!(
            g2.node_by_label("123 Green St"),
            g.node_by_label("123 Green St")
        );
    }

    #[test]
    fn rejects_bad_kind() {
        let r = std::io::Cursor::new(b"X\t1\t2\n".to_vec());
        assert!(matches!(
            read_tsv(r),
            Err(GraphError::Parse { line: 1, .. })
        ));
    }

    #[test]
    fn rejects_sparse_node_ids() {
        let r = std::io::Cursor::new(b"T\t0\tuser\nN\t5\t0\tAlice\n".to_vec());
        assert!(matches!(
            read_tsv(r),
            Err(GraphError::Parse { line: 2, .. })
        ));
    }

    #[test]
    fn rejects_unknown_type_on_node() {
        let r = std::io::Cursor::new(b"T\t0\tuser\nN\t0\t7\tAlice\n".to_vec());
        assert!(matches!(read_tsv(r), Err(GraphError::UnknownType(7))));
    }

    #[test]
    fn skips_comments_and_blank_lines() {
        let r = std::io::Cursor::new(b"# hello\n\nT\t0\tuser\nN\t0\t0\tA\n".to_vec());
        let g = read_tsv(r).unwrap();
        assert_eq!(g.n_nodes(), 1);
    }

    #[test]
    fn file_roundtrip() {
        let g = sample();
        let dir = std::env::temp_dir().join("mgp_graph_io_test");
        std::fs::create_dir_all(&dir).unwrap();
        let path = dir.join("g.tsv");
        save_tsv(&g, &path).unwrap();
        let g2 = load_tsv(&path).unwrap();
        assert_eq!(g2.n_nodes(), g.n_nodes());
        std::fs::remove_file(path).ok();
    }
}

//! Strongly-typed identifiers for nodes and object types.
//!
//! Node ids are `u32` (the paper's graphs have at most ~66k nodes; u32 keeps
//! adjacency arrays half the size of `usize` and the hot maps cache-friendly,
//! per the perf-book guidance on smaller integers). Type ids are `u16`.

use serde::{Deserialize, Serialize};

/// Identifier of a node (object) in a [`crate::Graph`].
///
/// Dense: nodes of a graph with `n` nodes are exactly `NodeId(0..n)`.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash, Serialize, Deserialize)]
#[serde(transparent)]
pub struct NodeId(pub u32);

/// Identifier of an object type (e.g. `user`, `school`).
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash, Serialize, Deserialize)]
#[serde(transparent)]
pub struct TypeId(pub u16);

impl NodeId {
    /// The id as a `usize`, for indexing.
    #[inline(always)]
    pub fn index(self) -> usize {
        self.0 as usize
    }
}

impl TypeId {
    /// The id as a `usize`, for indexing.
    #[inline(always)]
    pub fn index(self) -> usize {
        self.0 as usize
    }
}

impl From<u32> for NodeId {
    #[inline]
    fn from(v: u32) -> Self {
        NodeId(v)
    }
}

impl From<u16> for TypeId {
    #[inline]
    fn from(v: u16) -> Self {
        TypeId(v)
    }
}

impl std::fmt::Display for NodeId {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(f, "n{}", self.0)
    }
}

impl std::fmt::Display for TypeId {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(f, "t{}", self.0)
    }
}

/// Packs an unordered pair of node ids into a single `u64` key.
///
/// The smaller id goes into the high half so that keys sort like
/// `(min, max)` pairs. Used for the `m_xy` pair-count maps (Eq. 1).
#[inline(always)]
pub fn pack_pair(a: NodeId, b: NodeId) -> u64 {
    let (lo, hi) = if a.0 <= b.0 { (a.0, b.0) } else { (b.0, a.0) };
    ((lo as u64) << 32) | hi as u64
}

/// Inverse of [`pack_pair`]: returns `(min, max)`.
#[inline(always)]
pub fn unpack_pair(key: u64) -> (NodeId, NodeId) {
    (NodeId((key >> 32) as u32), NodeId(key as u32))
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn pack_is_order_independent() {
        let a = NodeId(7);
        let b = NodeId(1_000_003);
        assert_eq!(pack_pair(a, b), pack_pair(b, a));
    }

    #[test]
    fn pack_roundtrip() {
        let a = NodeId(42);
        let b = NodeId(9);
        let (lo, hi) = unpack_pair(pack_pair(a, b));
        assert_eq!((lo, hi), (NodeId(9), NodeId(42)));
    }

    #[test]
    fn pack_distinct_pairs_distinct_keys() {
        let k1 = pack_pair(NodeId(1), NodeId(2));
        let k2 = pack_pair(NodeId(1), NodeId(3));
        let k3 = pack_pair(NodeId(2), NodeId(3));
        assert_ne!(k1, k2);
        assert_ne!(k1, k3);
        assert_ne!(k2, k3);
    }

    #[test]
    fn display_forms() {
        assert_eq!(NodeId(5).to_string(), "n5");
        assert_eq!(TypeId(3).to_string(), "t3");
    }

    #[test]
    fn index_conversion() {
        assert_eq!(NodeId(17).index(), 17usize);
        assert_eq!(TypeId(4).index(), 4usize);
        assert_eq!(NodeId::from(3u32), NodeId(3));
        assert_eq!(TypeId::from(2u16), TypeId(2));
    }

    #[test]
    fn serde_transparent() {
        let n = NodeId(12);
        let s = serde_json::to_string(&n).unwrap();
        assert_eq!(s, "12");
        let back: NodeId = serde_json::from_str(&s).unwrap();
        assert_eq!(back, n);
    }
}

//! Property-based tests of the CSR graph substrate.

use mgp_graph::{GraphBuilder, NodeId, TypeId};
use proptest::prelude::*;

/// Builds a graph from arbitrary node types and candidate edges.
fn build(types: &[u16], edges: &[(usize, usize)]) -> mgp_graph::Graph {
    let mut b = GraphBuilder::new();
    let n_types = types.iter().copied().max().unwrap_or(0) as usize + 1;
    for t in 0..n_types {
        b.add_type(&format!("t{t}"));
    }
    for (i, &t) in types.iter().enumerate() {
        b.add_node(TypeId(t), format!("n{i}"));
    }
    for &(x, y) in edges {
        let (x, y) = (x % types.len(), y % types.len());
        if x != y {
            b.add_edge(NodeId(x as u32), NodeId(y as u32)).unwrap();
        }
    }
    b.build()
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(64))]

    #[test]
    fn csr_invariants(
        types in prop::collection::vec(0u16..4, 1..30),
        edges in prop::collection::vec((0usize..40, 0usize..40), 0..80),
    ) {
        let g = build(&types, &edges);

        // Degree sum = 2|E|.
        let degree_sum: usize = g.nodes().map(|v| g.degree(v)).sum();
        prop_assert_eq!(degree_sum as u64, 2 * g.n_edges());

        // Adjacency sorted by (type, id), no self loops, symmetric.
        for v in g.nodes() {
            let adj = g.neighbors(v);
            for w in adj.windows(2) {
                prop_assert!((g.node_type(w[0]), w[0]) < (g.node_type(w[1]), w[1]));
            }
            for &u in adj {
                prop_assert_ne!(u, v);
                prop_assert!(g.has_edge(v, u));
                prop_assert!(g.has_edge(u, v));
                prop_assert!(g.neighbors(u).contains(&v));
            }
        }

        // has_edge agrees with the edge iterator; each edge listed once.
        let listed: Vec<(NodeId, NodeId)> = g.edges().collect();
        prop_assert_eq!(listed.len() as u64, g.n_edges());
        let mut dedup = listed.clone();
        dedup.sort_unstable();
        dedup.dedup();
        prop_assert_eq!(dedup.len(), listed.len());

        // Typed neighbour slices partition the adjacency.
        for v in g.nodes() {
            let mut total = 0;
            for t in 0..g.n_types() {
                let slice = g.neighbors_of_type(v, TypeId(t as u16));
                total += slice.len();
                for &u in slice {
                    prop_assert_eq!(g.node_type(u), TypeId(t as u16));
                }
            }
            prop_assert_eq!(total, g.degree(v));
        }

        // Type node lists partition V.
        let mut count = 0;
        for t in 0..g.n_types() {
            let nodes = g.nodes_of_type(TypeId(t as u16));
            count += nodes.len();
            for &v in nodes {
                prop_assert_eq!(g.node_type(v), TypeId(t as u16));
            }
        }
        prop_assert_eq!(count, g.n_nodes());

        // Edge-type statistics total |E|.
        let mut stat_total = 0u64;
        for a in 0..g.n_types() {
            for b in a..g.n_types() {
                stat_total += g.edge_type_count(TypeId(a as u16), TypeId(b as u16));
            }
        }
        prop_assert_eq!(stat_total, g.n_edges());
    }

    /// The intersection kernels (`mgp_graph::intersect`) assume every
    /// adjacency list — and every typed sub-slice of it — stays sorted
    /// across incremental churn. Pin that `apply_delta`'s CSR splice
    /// preserves the `(type, id)` order (and therefore ascending-id
    /// typed slices) under arbitrary mixed insert/remove/detach batches,
    /// including for tombstoned (fully detached) nodes.
    #[test]
    fn apply_delta_preserves_sorted_adjacency(
        types in prop::collection::vec(0u16..4, 2..25),
        edges in prop::collection::vec((0usize..40, 0usize..40), 0..60),
        inserts in prop::collection::vec((0usize..50, 0usize..50), 0..25),
        removals in prop::collection::vec((0usize..50, 0usize..50), 0..25),
        detached in prop::collection::vec(0usize..50, 0..4),
        new_nodes in prop::collection::vec(0u16..4, 0..5),
    ) {
        let g = build(&types, &edges);
        let mut d = mgp_graph::GraphDelta::for_graph(&g);
        // Only types the base actually registered are addable.
        let added: Vec<NodeId> = new_nodes
            .iter()
            .enumerate()
            .map(|(i, &t)| d.add_node(TypeId(t % g.n_types() as u16), format!("d{i}")))
            .collect();
        let n_total = g.n_nodes() + added.len();
        for &(x, y) in &inserts {
            let (x, y) = (x % n_total, y % n_total);
            if x != y {
                d.add_edge(NodeId(x as u32), NodeId(y as u32)).unwrap();
            }
        }
        for &(x, y) in &removals {
            let (x, y) = (x % g.n_nodes(), y % g.n_nodes());
            if x != y {
                d.remove_edge(NodeId(x as u32), NodeId(y as u32)).unwrap();
            }
        }
        for &v in &detached {
            d.remove_node(NodeId((v % g.n_nodes()) as u32)).unwrap();
        }
        let ext = g.apply_delta(&d).unwrap();
        let post = &ext.graph;

        for v in post.nodes() {
            // Full adjacency sorted by (type, id) — strictly, so no
            // duplicate edges survive the splice either.
            for w in post.neighbors(v).windows(2) {
                prop_assert!(
                    (post.node_type(w[0]), w[0]) < (post.node_type(w[1]), w[1]),
                    "adjacency of {} lost (type, id) order after apply_delta", v
                );
            }
            // Typed slices are ascending by raw id — the exact
            // precondition of intersect_merge/intersect_gallop.
            for t in 0..post.n_types() {
                let slice = post.neighbors_of_type(v, TypeId(t as u16));
                for w in slice.windows(2) {
                    prop_assert!(w[0] < w[1]);
                }
            }
        }
        // A tombstoned node keeps only edges the same batch inserted
        // (net semantics — a same-batch insert lands even onto a removed
        // node, and a base edge re-inserted over the detach survives);
        // with no such inserts its slices are empty — the degenerate
        // input the kernels must tolerate.
        for &v in &ext.removed_nodes {
            let batch_partners: Vec<NodeId> = inserts
                .iter()
                .map(|&(x, y)| (NodeId((x % n_total) as u32), NodeId((y % n_total) as u32)))
                .filter_map(|(a, b)| {
                    if a == v {
                        Some(b)
                    } else if b == v {
                        Some(a)
                    } else {
                        None
                    }
                })
                .collect();
            for &u in post.neighbors(v) {
                prop_assert!(
                    batch_partners.contains(&u),
                    "tombstoned {} kept non-reinserted edge to {}", v, u
                );
            }
        }
        // Sanity: the kernels agree with has_edge on the spliced graph.
        for v in post.nodes().take(10) {
            for t in 0..post.n_types() {
                let slice = post.neighbors_of_type(v, TypeId(t as u16));
                for &u in post.nodes_of_type(TypeId(t as u16)).iter().take(10) {
                    prop_assert_eq!(
                        mgp_graph::contains_sorted(slice, u),
                        post.has_edge(v, u) && post.node_type(u) == TypeId(t as u16)
                    );
                }
            }
        }
    }

    #[test]
    fn persistence_roundtrips(
        types in prop::collection::vec(0u16..3, 1..15),
        edges in prop::collection::vec((0usize..20, 0usize..20), 0..30),
    ) {
        let g = build(&types, &edges);

        // Binary.
        let g2 = mgp_graph::binary::decode(mgp_graph::binary::encode(&g).unwrap()).unwrap();
        prop_assert_eq!(g2.n_nodes(), g.n_nodes());
        prop_assert_eq!(g2.n_edges(), g.n_edges());
        for (a, b) in g.edges() {
            prop_assert!(g2.has_edge(a, b));
        }

        // TSV.
        let mut buf = Vec::new();
        mgp_graph::io::write_tsv(&g, &mut buf).unwrap();
        let g3 = mgp_graph::io::read_tsv(std::io::Cursor::new(&buf)).unwrap();
        prop_assert_eq!(g3.n_nodes(), g.n_nodes());
        prop_assert_eq!(g3.n_edges(), g.n_edges());
        for v in g.nodes() {
            prop_assert_eq!(g3.node_type(v), g.node_type(v));
        }
    }
}

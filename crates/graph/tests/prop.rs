//! Property-based tests of the CSR graph substrate.

use mgp_graph::{GraphBuilder, NodeId, TypeId};
use proptest::prelude::*;

/// Builds a graph from arbitrary node types and candidate edges.
fn build(types: &[u16], edges: &[(usize, usize)]) -> mgp_graph::Graph {
    let mut b = GraphBuilder::new();
    let n_types = types.iter().copied().max().unwrap_or(0) as usize + 1;
    for t in 0..n_types {
        b.add_type(&format!("t{t}"));
    }
    for (i, &t) in types.iter().enumerate() {
        b.add_node(TypeId(t), format!("n{i}"));
    }
    for &(x, y) in edges {
        let (x, y) = (x % types.len(), y % types.len());
        if x != y {
            b.add_edge(NodeId(x as u32), NodeId(y as u32)).unwrap();
        }
    }
    b.build()
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(64))]

    #[test]
    fn csr_invariants(
        types in prop::collection::vec(0u16..4, 1..30),
        edges in prop::collection::vec((0usize..40, 0usize..40), 0..80),
    ) {
        let g = build(&types, &edges);

        // Degree sum = 2|E|.
        let degree_sum: usize = g.nodes().map(|v| g.degree(v)).sum();
        prop_assert_eq!(degree_sum as u64, 2 * g.n_edges());

        // Adjacency sorted by (type, id), no self loops, symmetric.
        for v in g.nodes() {
            let adj = g.neighbors(v);
            for w in adj.windows(2) {
                prop_assert!((g.node_type(w[0]), w[0]) < (g.node_type(w[1]), w[1]));
            }
            for &u in adj {
                prop_assert_ne!(u, v);
                prop_assert!(g.has_edge(v, u));
                prop_assert!(g.has_edge(u, v));
                prop_assert!(g.neighbors(u).contains(&v));
            }
        }

        // has_edge agrees with the edge iterator; each edge listed once.
        let listed: Vec<(NodeId, NodeId)> = g.edges().collect();
        prop_assert_eq!(listed.len() as u64, g.n_edges());
        let mut dedup = listed.clone();
        dedup.sort_unstable();
        dedup.dedup();
        prop_assert_eq!(dedup.len(), listed.len());

        // Typed neighbour slices partition the adjacency.
        for v in g.nodes() {
            let mut total = 0;
            for t in 0..g.n_types() {
                let slice = g.neighbors_of_type(v, TypeId(t as u16));
                total += slice.len();
                for &u in slice {
                    prop_assert_eq!(g.node_type(u), TypeId(t as u16));
                }
            }
            prop_assert_eq!(total, g.degree(v));
        }

        // Type node lists partition V.
        let mut count = 0;
        for t in 0..g.n_types() {
            let nodes = g.nodes_of_type(TypeId(t as u16));
            count += nodes.len();
            for &v in nodes {
                prop_assert_eq!(g.node_type(v), TypeId(t as u16));
            }
        }
        prop_assert_eq!(count, g.n_nodes());

        // Edge-type statistics total |E|.
        let mut stat_total = 0u64;
        for a in 0..g.n_types() {
            for b in a..g.n_types() {
                stat_total += g.edge_type_count(TypeId(a as u16), TypeId(b as u16));
            }
        }
        prop_assert_eq!(stat_total, g.n_edges());
    }

    #[test]
    fn persistence_roundtrips(
        types in prop::collection::vec(0u16..3, 1..15),
        edges in prop::collection::vec((0usize..20, 0usize..20), 0..30),
    ) {
        let g = build(&types, &edges);

        // Binary.
        let g2 = mgp_graph::binary::decode(mgp_graph::binary::encode(&g).unwrap()).unwrap();
        prop_assert_eq!(g2.n_nodes(), g.n_nodes());
        prop_assert_eq!(g2.n_edges(), g.n_edges());
        for (a, b) in g.edges() {
            prop_assert!(g2.has_edge(a, b));
        }

        // TSV.
        let mut buf = Vec::new();
        mgp_graph::io::write_tsv(&g, &mut buf).unwrap();
        let g3 = mgp_graph::io::read_tsv(std::io::Cursor::new(&buf)).unwrap();
        prop_assert_eq!(g3.n_nodes(), g.n_nodes());
        prop_assert_eq!(g3.n_edges(), g.n_edges());
        for v in g.nodes() {
            prop_assert_eq!(g3.node_type(v), g.node_type(v));
        }
    }
}

//! # mgp-persist — mmap-backed snapshots and the delta journal
//!
//! The durability layer of the engine: a restart should *map* its state
//! back, not recompute it. Two artifacts cooperate:
//!
//! * **Snapshot** ([`SnapshotWriter`] / [`Snapshot`]): one file of
//!   page-aligned *typed sections* behind a checksummed section table.
//!   Writers append named sections (raw `u32`/`u64`/`f64` columns, or
//!   opaque byte payloads like the graph's binary encoding) and publish
//!   the file atomically (temp + rename via [`mgp_graph::atomic_write`]).
//!   Readers memory-map the file and hand out **typed slices straight
//!   over the mapped region** — the `TypedMemoryMap` idiom: zero parse,
//!   zero copy on load; every section's CRC-32 is verified once at open
//!   so corruption fails loudly before anything is served.
//! * **Journal** ([`Journal`]): an append-only log of
//!   length-prefixed, CRC-checksummed, sequence-numbered
//!   [`GraphDelta`](mgp_graph::GraphDelta) records, `fsync`ed per
//!   append. A snapshot records the last journal sequence it covers, so
//!   a warm start replays only the tail — and a record torn by a crash
//!   mid-append is *truncated*, not fatal.
//!
//! Orchestration (which sections exist, what they mean) lives in
//! `mgp-core::SearchEngine::{save_snapshot, open_snapshot}`; this crate
//! is the format layer and knows nothing about engines.
//!
//! Both layouts follow the same discipline as the graph binary codec:
//! explicit magic + version, checked size arithmetic on every untrusted
//! count, typed errors — never a panic — on malformed input.

#![warn(missing_docs)]

mod crc;
mod journal;
mod mmap;
mod snapshot;

pub use crc::crc32;
pub use journal::{Journal, JournalRecovery};
pub use mmap::MappedFile;
pub use snapshot::{Snapshot, SnapshotWriter, SECTION_ALIGN};

/// Why a persistence operation failed.
#[derive(Debug)]
pub enum PersistError {
    /// Underlying I/O failure.
    Io(std::io::Error),
    /// A snapshot or journal file is structurally invalid (bad magic,
    /// out-of-bounds section, checksum mismatch in a *non-tail* journal
    /// record, …).
    Corrupt(String),
    /// A graph payload inside an otherwise valid container failed to
    /// decode or apply.
    Graph(mgp_graph::GraphError),
}

impl std::fmt::Display for PersistError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            PersistError::Io(e) => write!(f, "i/o error: {e}"),
            PersistError::Corrupt(m) => write!(f, "corrupt persistence file: {m}"),
            PersistError::Graph(e) => write!(f, "graph payload error: {e}"),
        }
    }
}

impl std::error::Error for PersistError {
    fn source(&self) -> Option<&(dyn std::error::Error + 'static)> {
        match self {
            PersistError::Io(e) => Some(e),
            PersistError::Corrupt(_) => None,
            PersistError::Graph(e) => Some(e),
        }
    }
}

impl From<std::io::Error> for PersistError {
    fn from(e: std::io::Error) -> Self {
        PersistError::Io(e)
    }
}

impl From<mgp_graph::GraphError> for PersistError {
    fn from(e: mgp_graph::GraphError) -> Self {
        PersistError::Graph(e)
    }
}

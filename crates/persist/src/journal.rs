//! The delta journal: an append-only write-ahead log of
//! [`GraphDelta`] records. Each ingest appends one record and
//! `fsync`s before the in-memory commit, so a crash at any instant
//! loses at most the delta being written — and that torn tail is
//! detected by checksum/length and truncated away on reopen, never
//! reported as corruption.
//!
//! Layout (little-endian):
//!
//! ```text
//! 0: magic "MGPJRNL\x01"                          (8 bytes)
//! 8: record*
//!    record = seq u64 | len u32 | crc32 u32 | payload[len]
//!    crc32 covers seq's 8 LE bytes ++ payload
//! ```
//!
//! Sequence numbers start at 1 and must increase by exactly 1 per
//! record; a snapshot stores the last sequence it covers so warm start
//! replays only `seq > covered`.

use crate::crc::crc32;
use crate::PersistError;
use mgp_graph::GraphDelta;
use std::fs::{File, OpenOptions};
use std::io::{Read, Write};
use std::path::Path;

const MAGIC: &[u8; 8] = b"MGPJRNL\x01";
const RECORD_HEADER: usize = 16; // seq u64 + len u32 + crc u32

/// What [`Journal::open`] found on disk: the decoded records and
/// whether a torn tail had to be dropped.
#[derive(Debug)]
pub struct JournalRecovery {
    /// Every intact record, in order: `(sequence, delta)`.
    pub records: Vec<(u64, GraphDelta)>,
    /// Bytes of a torn (incomplete or checksum-failing) final record
    /// that were truncated away. `0` means the file ended cleanly.
    pub truncated_bytes: u64,
}

/// An open, append-position journal file.
///
/// Obtained from [`Journal::create`] (new file) or [`Journal::open`]
/// (existing file, with tail recovery). Appends are durable: each
/// [`Journal::append`] writes one framed record and syncs file data
/// before returning.
#[derive(Debug)]
pub struct Journal {
    file: File,
    next_seq: u64,
}

impl Journal {
    /// Creates a fresh journal at `path`, overwriting any existing file.
    /// The first appended record gets sequence 1.
    pub fn create(path: impl AsRef<Path>) -> Result<Self, PersistError> {
        let mut file = OpenOptions::new()
            .write(true)
            .create(true)
            .truncate(true)
            .open(path)?;
        file.write_all(MAGIC)?;
        file.sync_all()?;
        Ok(Journal { file, next_seq: 1 })
    }

    /// Opens an existing journal, decoding every record. A final record
    /// cut short by a crash — incomplete header, payload shorter than
    /// its length prefix, or a checksum mismatch *at the very tail* —
    /// is truncated off the file and reported in
    /// [`JournalRecovery::truncated_bytes`]. Corruption anywhere
    /// *before* the tail (a record that decodes but is followed by more
    /// intact data after a bad one) still truncates at the first bad
    /// record: everything after it is unreachable without its sequence
    /// link, so the journal keeps the longest intact prefix.
    pub fn open(path: impl AsRef<Path>) -> Result<(Self, JournalRecovery), PersistError> {
        let mut file = OpenOptions::new().read(true).write(true).open(path)?;
        let mut data = Vec::new();
        file.read_to_end(&mut data)?;
        if data.len() < MAGIC.len() || &data[..MAGIC.len()] != MAGIC {
            return Err(PersistError::Corrupt("bad journal magic".into()));
        }

        let mut records = Vec::new();
        let mut at = MAGIC.len();
        let mut expect_seq = 1u64;
        let valid_end;
        loop {
            if at == data.len() {
                valid_end = at;
                break;
            }
            let Some(rec) = decode_record(&data[at..], expect_seq) else {
                valid_end = at;
                break;
            };
            let (delta, consumed) = rec?;
            records.push((expect_seq, delta));
            expect_seq += 1;
            at += consumed;
        }

        let truncated_bytes = (data.len() - valid_end) as u64;
        if truncated_bytes > 0 {
            file.set_len(valid_end as u64)?;
            file.sync_all()?;
        }
        // Reposition for appends: set_len does not move the cursor, and
        // read_to_end left it at the (old) end.
        use std::io::{Seek, SeekFrom};
        file.seek(SeekFrom::Start(valid_end as u64))?;

        Ok((
            Journal {
                file,
                next_seq: expect_seq,
            },
            JournalRecovery {
                records,
                truncated_bytes,
            },
        ))
    }

    /// Appends one delta as the next record and syncs file data to disk
    /// before returning. On success the record is durable: a crash
    /// immediately after `append` returns will replay it.
    pub fn append(&mut self, delta: &GraphDelta) -> Result<u64, PersistError> {
        let payload = delta.to_bytes()?;
        let len = u32::try_from(payload.len()).map_err(|_| {
            PersistError::Corrupt(format!(
                "delta payload of {} bytes exceeds journal record limit",
                payload.len()
            ))
        })?;
        let seq = self.next_seq;
        let mut crc_input = Vec::with_capacity(8 + payload.len());
        crc_input.extend_from_slice(&seq.to_le_bytes());
        crc_input.extend_from_slice(&payload);
        let crc = crc32(&crc_input);

        let mut frame = Vec::with_capacity(RECORD_HEADER + payload.len());
        frame.extend_from_slice(&seq.to_le_bytes());
        frame.extend_from_slice(&len.to_le_bytes());
        frame.extend_from_slice(&crc.to_le_bytes());
        frame.extend_from_slice(&payload);
        self.file.write_all(&frame)?;
        self.file.sync_data()?;
        self.next_seq += 1;
        Ok(seq)
    }

    /// The sequence number the next [`Journal::append`] will use.
    pub fn next_seq(&self) -> u64 {
        self.next_seq
    }

    /// The sequence number of the last durable record (`0` if none).
    pub fn last_seq(&self) -> u64 {
        self.next_seq - 1
    }
}

/// Tries to decode one record at the start of `data`. Returns `None`
/// when the bytes look like a torn tail (to be truncated): incomplete
/// header, payload extending past the end, checksum mismatch, or a
/// sequence number that is not the expected next one. Returns
/// `Some(Err)` only for payloads that frame correctly but fail the
/// delta codec — that is real corruption, not a torn write.
#[allow(clippy::type_complexity)]
fn decode_record(
    data: &[u8],
    expect_seq: u64,
) -> Option<Result<(GraphDelta, usize), PersistError>> {
    if data.len() < RECORD_HEADER {
        return None;
    }
    let seq = u64::from_le_bytes(data[..8].try_into().expect("8 bytes"));
    let len = u32::from_le_bytes(data[8..12].try_into().expect("4 bytes")) as usize;
    let crc = u32::from_le_bytes(data[12..16].try_into().expect("4 bytes"));
    let total = RECORD_HEADER.checked_add(len)?;
    if seq != expect_seq || data.len() < total {
        return None;
    }
    let payload = &data[RECORD_HEADER..total];
    let mut crc_input = Vec::with_capacity(8 + len);
    crc_input.extend_from_slice(&data[..8]);
    crc_input.extend_from_slice(payload);
    if crc32(&crc_input) != crc {
        return None;
    }
    Some(
        GraphDelta::from_bytes(payload)
            .map(|d| (d, total))
            .map_err(PersistError::from),
    )
}

#[cfg(test)]
mod tests {
    use super::*;

    fn tmp(name: &str) -> std::path::PathBuf {
        let dir = std::env::temp_dir().join(format!("mgp_journal_{}", std::process::id()));
        std::fs::create_dir_all(&dir).unwrap();
        dir.join(name)
    }

    fn sample_deltas() -> Vec<GraphDelta> {
        use mgp_graph::{GraphBuilder, NodeId};
        let mut b = GraphBuilder::new();
        let user = b.add_type("user");
        let n0 = b.add_node(user, "n0");
        let n1 = b.add_node(user, "n1");
        let n2 = b.add_node(user, "n2");
        b.add_edge(n0, n1).unwrap();
        b.add_edge(n1, n2).unwrap();
        let g = b.build();

        let mut a = GraphDelta::for_graph(&g);
        let fresh = a.add_node(user, "alpha");
        a.add_edge(NodeId(0), fresh).unwrap();
        let mut b = GraphDelta::for_graph(&g);
        b.remove_edge(NodeId(0), NodeId(1)).unwrap();
        let mut c = GraphDelta::for_graph(&g);
        c.remove_node(NodeId(2)).unwrap();
        vec![a, b, c]
    }

    #[test]
    fn append_reopen_replays_in_order() {
        let path = tmp("roundtrip.wal");
        let deltas = sample_deltas();
        {
            let mut j = Journal::create(&path).unwrap();
            for (i, d) in deltas.iter().enumerate() {
                assert_eq!(j.append(d).unwrap(), i as u64 + 1);
            }
            assert_eq!(j.last_seq(), 3);
        }
        let (j, rec) = Journal::open(&path).unwrap();
        assert_eq!(rec.truncated_bytes, 0);
        assert_eq!(rec.records.len(), 3);
        for (i, (seq, d)) in rec.records.iter().enumerate() {
            assert_eq!(*seq, i as u64 + 1);
            assert_eq!(d, &deltas[i]);
        }
        assert_eq!(j.next_seq(), 4);
        std::fs::remove_file(path).ok();
    }

    #[test]
    fn append_after_reopen_continues_sequence() {
        let path = tmp("continue.wal");
        let deltas = sample_deltas();
        {
            let mut j = Journal::create(&path).unwrap();
            j.append(&deltas[0]).unwrap();
        }
        {
            let (mut j, _) = Journal::open(&path).unwrap();
            assert_eq!(j.append(&deltas[1]).unwrap(), 2);
        }
        let (_, rec) = Journal::open(&path).unwrap();
        assert_eq!(rec.records.len(), 2);
        assert_eq!(rec.records[1].1, deltas[1]);
        std::fs::remove_file(path).ok();
    }

    /// A crash mid-append leaves a partial record at the tail; every
    /// possible cut point must recover to the intact prefix.
    #[test]
    fn torn_tail_truncates_at_every_cut_point() {
        let path = tmp("torn.wal");
        let deltas = sample_deltas();
        let mut j = Journal::create(&path).unwrap();
        j.append(&deltas[0]).unwrap();
        j.append(&deltas[1]).unwrap();
        let two = std::fs::read(&path).unwrap();
        j.append(&deltas[2]).unwrap();
        drop(j);
        let three = std::fs::read(&path).unwrap();

        for cut in two.len() + 1..three.len() {
            std::fs::write(&path, &three[..cut]).unwrap();
            let (mut j, rec) = Journal::open(&path).unwrap();
            assert_eq!(rec.records.len(), 2, "cut at {cut}");
            assert_eq!(rec.truncated_bytes, (cut - two.len()) as u64);
            assert_eq!(std::fs::metadata(&path).unwrap().len(), two.len() as u64);
            // The journal stays usable: the tail slot is rewritten.
            assert_eq!(j.append(&deltas[2]).unwrap(), 3);
            let (_, rec) = Journal::open(&path).unwrap();
            assert_eq!(rec.records.len(), 3);
            assert_eq!(rec.records[2].1, deltas[2]);
        }
        std::fs::remove_file(path).ok();
    }

    #[test]
    fn corrupt_tail_checksum_is_truncated() {
        let path = tmp("flip.wal");
        let deltas = sample_deltas();
        let mut j = Journal::create(&path).unwrap();
        j.append(&deltas[0]).unwrap();
        let one = std::fs::read(&path).unwrap().len();
        j.append(&deltas[1]).unwrap();
        drop(j);
        let mut bytes = std::fs::read(&path).unwrap();
        let last = bytes.len() - 1;
        bytes[last] ^= 0xFF; // flip a payload byte of the final record
        std::fs::write(&path, &bytes).unwrap();

        let (_, rec) = Journal::open(&path).unwrap();
        assert_eq!(rec.records.len(), 1);
        assert_eq!(rec.records[0].1, deltas[0]);
        assert!(rec.truncated_bytes > 0);
        assert_eq!(std::fs::metadata(&path).unwrap().len(), one as u64);
        std::fs::remove_file(path).ok();
    }

    #[test]
    fn empty_journal_recovers_empty() {
        let path = tmp("empty.wal");
        Journal::create(&path).unwrap();
        let (j, rec) = Journal::open(&path).unwrap();
        assert!(rec.records.is_empty());
        assert_eq!(rec.truncated_bytes, 0);
        assert_eq!(j.next_seq(), 1);
        assert_eq!(j.last_seq(), 0);
        std::fs::remove_file(path).ok();
    }

    #[test]
    fn bad_magic_is_an_error_not_a_truncation() {
        let path = tmp("magic.wal");
        std::fs::write(&path, b"NOTAJRNL").unwrap();
        assert!(matches!(
            Journal::open(&path),
            Err(PersistError::Corrupt(_))
        ));
        std::fs::write(&path, b"MG").unwrap();
        assert!(Journal::open(&path).is_err());
        std::fs::remove_file(path).ok();
    }
}

//! The snapshot container: named, page-aligned, CRC-checksummed byte
//! sections behind a fixed-size section table, designed so a reader can
//! hand out **typed slices directly over the memory-mapped file** — the
//! `TypedMemoryMap` idiom. Nothing in a section is parsed on load; the
//! only per-byte work at open is the one-time CRC verification.
//!
//! Layout (little-endian):
//!
//! ```text
//! 0:  magic  "MGPSNAP\x01"                      (8 bytes)
//! 8:  n_sections u64
//! 16: n_sections × entry {
//!         tag     [u8; 8]   (zero-padded ascii)
//!         offset  u64       (from file start, SECTION_ALIGN-aligned)
//!         len     u64       (bytes)
//!         crc32   u64       (CRC-32 of the section bytes, zero-extended)
//!     }
//! then: table_crc u32       (CRC-32 of everything above it)
//! …zero padding…
//! each section at the next SECTION_ALIGN boundary, zero-padded between
//! ```
//!
//! Alignment does double duty: sections start on page boundaries (mmap
//! prefetch friendliness) and therefore on 8-byte boundaries, making the
//! typed casts ([`Snapshot::u32s`], [`Snapshot::u64s`],
//! [`Snapshot::f64s`]) valid wherever the base mapping is 8-aligned —
//! which [`MappedFile`](crate::MappedFile) guarantees.

use crate::crc::crc32;
use crate::{MappedFile, PersistError};
use std::path::Path;

/// Section offsets are multiples of this (one 4 KiB page).
pub const SECTION_ALIGN: usize = 4096;

const MAGIC: &[u8; 8] = b"MGPSNAP\x01";
const ENTRY_BYTES: usize = 32;
const HEADER_BYTES: usize = 16;

fn pad_to(buf: &mut Vec<u8>, align: usize) {
    let rem = buf.len() % align;
    if rem != 0 {
        buf.resize(buf.len() + (align - rem), 0);
    }
}

fn tag_bytes(tag: &str) -> Result<[u8; 8], PersistError> {
    let b = tag.as_bytes();
    if b.is_empty() || b.len() > 8 || b.iter().any(|&c| c == 0 || !c.is_ascii()) {
        return Err(PersistError::Corrupt(format!(
            "section tag {tag:?} must be 1–8 non-NUL ascii bytes"
        )));
    }
    let mut out = [0u8; 8];
    out[..b.len()].copy_from_slice(b);
    Ok(out)
}

/// Accumulates named sections and writes the snapshot file atomically.
#[derive(Default)]
pub struct SnapshotWriter {
    sections: Vec<([u8; 8], Vec<u8>)>,
}

impl SnapshotWriter {
    /// An empty writer.
    pub fn new() -> Self {
        Self::default()
    }

    /// Appends an opaque byte section. Tags are 1–8 ascii bytes and must
    /// be unique within the snapshot.
    pub fn add_section(&mut self, tag: &str, bytes: Vec<u8>) -> Result<(), PersistError> {
        let tag = tag_bytes(tag)?;
        if self.sections.iter().any(|(t, _)| *t == tag) {
            return Err(PersistError::Corrupt(format!(
                "duplicate section tag {:?}",
                String::from_utf8_lossy(&tag)
            )));
        }
        self.sections.push((tag, bytes));
        Ok(())
    }

    /// Appends a `u32` column as a little-endian section.
    pub fn add_u32s(&mut self, tag: &str, values: &[u32]) -> Result<(), PersistError> {
        self.add_section(tag, values.iter().flat_map(|v| v.to_le_bytes()).collect())
    }

    /// Appends a `u64` column as a little-endian section.
    pub fn add_u64s(&mut self, tag: &str, values: &[u64]) -> Result<(), PersistError> {
        self.add_section(tag, values.iter().flat_map(|v| v.to_le_bytes()).collect())
    }

    /// Appends an `f64` column as a little-endian section, preserving
    /// every bit pattern (sentinels like `NEG_INFINITY` included).
    pub fn add_f64s(&mut self, tag: &str, values: &[f64]) -> Result<(), PersistError> {
        self.add_section(
            tag,
            values
                .iter()
                .flat_map(|v| v.to_bits().to_le_bytes())
                .collect(),
        )
    }

    /// Serialises the table + sections and publishes the file atomically
    /// (temp file + fsync + rename): a crash mid-save leaves any
    /// previous snapshot at `path` untouched.
    pub fn finish(self, path: impl AsRef<Path>) -> Result<(), PersistError> {
        let mut buf = Vec::new();
        buf.extend_from_slice(MAGIC);
        buf.extend_from_slice(&(self.sections.len() as u64).to_le_bytes());
        // Table entries and the table CRC are back-patched once offsets
        // are known.
        let table_at = buf.len();
        buf.resize(buf.len() + self.sections.len() * ENTRY_BYTES, 0);
        let table_end = buf.len();
        buf.resize(table_end + 4, 0);

        let mut entries = Vec::with_capacity(self.sections.len());
        for (tag, bytes) in &self.sections {
            pad_to(&mut buf, SECTION_ALIGN);
            let offset = buf.len() as u64;
            buf.extend_from_slice(bytes);
            entries.push((*tag, offset, bytes.len() as u64, crc32(bytes) as u64));
        }
        for (i, (tag, offset, len, crc)) in entries.into_iter().enumerate() {
            let at = table_at + i * ENTRY_BYTES;
            buf[at..at + 8].copy_from_slice(&tag);
            buf[at + 8..at + 16].copy_from_slice(&offset.to_le_bytes());
            buf[at + 16..at + 24].copy_from_slice(&len.to_le_bytes());
            buf[at + 24..at + 32].copy_from_slice(&crc.to_le_bytes());
        }
        let table_crc = crc32(&buf[..table_end]);
        buf[table_end..table_end + 4].copy_from_slice(&table_crc.to_le_bytes());
        mgp_graph::atomic_write(path, &buf)?;
        Ok(())
    }
}

struct SectionEntry {
    tag: [u8; 8],
    offset: usize,
    len: usize,
}

/// An opened snapshot: the mapped file plus its validated section table.
/// Section accessors return slices **borrowing the mapping** — no copy,
/// no parse.
pub struct Snapshot {
    map: MappedFile,
    entries: Vec<SectionEntry>,
}

impl Snapshot {
    /// Maps `path` and validates the container: magic, table bounds
    /// (with checked arithmetic — a hostile section count or offset
    /// cannot wrap into a "valid" range), section alignment, and every
    /// section's CRC-32. Any violation is a typed
    /// [`PersistError::Corrupt`].
    pub fn open(path: impl AsRef<Path>) -> Result<Self, PersistError> {
        let map = MappedFile::open(path)?;
        let data = map.as_bytes();
        let corrupt = |m: String| PersistError::Corrupt(m);
        if data.len() < HEADER_BYTES || &data[..8] != MAGIC {
            return Err(corrupt("bad snapshot magic".into()));
        }
        let n = u64::from_le_bytes(data[8..16].try_into().expect("8 bytes"));
        let n = usize::try_from(n).map_err(|_| corrupt("section count overflows".into()))?;
        let table_end = n
            .checked_mul(ENTRY_BYTES)
            .and_then(|t| t.checked_add(HEADER_BYTES))
            .filter(|&end| end + 4 <= data.len())
            .ok_or_else(|| corrupt(format!("section table of {n} entries exceeds file")))?;
        let stored_crc =
            u32::from_le_bytes(data[table_end..table_end + 4].try_into().expect("4 bytes"));
        if crc32(&data[..table_end]) != stored_crc {
            return Err(corrupt("section table fails its checksum".into()));
        }

        let mut entries = Vec::with_capacity(n);
        for i in 0..n {
            let at = HEADER_BYTES + i * ENTRY_BYTES;
            let mut tag = [0u8; 8];
            tag.copy_from_slice(&data[at..at + 8]);
            let offset = u64::from_le_bytes(data[at + 8..at + 16].try_into().expect("8 bytes"));
            let len = u64::from_le_bytes(data[at + 16..at + 24].try_into().expect("8 bytes"));
            let crc = u64::from_le_bytes(data[at + 24..at + 32].try_into().expect("8 bytes"));
            let offset = usize::try_from(offset)
                .map_err(|_| corrupt(format!("section {i} offset overflows")))?;
            let len = usize::try_from(len)
                .map_err(|_| corrupt(format!("section {i} length overflows")))?;
            let end = offset
                .checked_add(len)
                .filter(|&e| e <= data.len())
                .ok_or_else(|| corrupt(format!("section {i} exceeds file bounds")))?;
            if offset % SECTION_ALIGN != 0 {
                return Err(corrupt(format!(
                    "section {i} offset {offset} is misaligned"
                )));
            }
            if offset < table_end + 4 {
                return Err(corrupt(format!("section {i} overlaps the table")));
            }
            if entries.iter().any(|e: &SectionEntry| e.tag == tag) {
                return Err(corrupt(format!(
                    "duplicate section tag {:?}",
                    String::from_utf8_lossy(&tag)
                )));
            }
            if crc32(&data[offset..end]) as u64 != crc {
                return Err(corrupt(format!(
                    "section {:?} fails its checksum",
                    String::from_utf8_lossy(&tag)
                )));
            }
            entries.push(SectionEntry { tag, offset, len });
        }
        Ok(Snapshot { map, entries })
    }

    /// Tags present, in file order.
    pub fn tags(&self) -> Vec<String> {
        self.entries
            .iter()
            .map(|e| {
                String::from_utf8_lossy(&e.tag)
                    .trim_end_matches('\0')
                    .to_owned()
            })
            .collect()
    }

    /// A section's raw bytes (borrowing the mapping), if present.
    pub fn section(&self, tag: &str) -> Option<&[u8]> {
        let tag = tag_bytes(tag).ok()?;
        self.entries
            .iter()
            .find(|e| e.tag == tag)
            .map(|e| &self.map.as_bytes()[e.offset..e.offset + e.len])
    }

    /// A section required to exist.
    pub fn require(&self, tag: &str) -> Result<&[u8], PersistError> {
        self.section(tag)
            .ok_or_else(|| PersistError::Corrupt(format!("missing section {tag:?}")))
    }

    /// A required section viewed as a `u32` column, straight over the
    /// mapping.
    pub fn u32s(&self, tag: &str) -> Result<&[u32], PersistError> {
        typed(self.require(tag)?, tag)
    }

    /// A required section viewed as a `u64` column.
    pub fn u64s(&self, tag: &str) -> Result<&[u64], PersistError> {
        typed(self.require(tag)?, tag)
    }

    /// A required section viewed as an `f64` column (bit patterns
    /// preserved, sentinels included).
    pub fn f64s(&self, tag: &str) -> Result<&[f64], PersistError> {
        typed(self.require(tag)?, tag)
    }
}

/// Reinterprets a section as a scalar slice. Sections are
/// `SECTION_ALIGN`-aligned within a mapping whose base is at least
/// 8-aligned, so the only runtime checks needed are the length multiple
/// and (defensively) the final pointer alignment.
fn typed<'a, T: Scalar>(bytes: &'a [u8], tag: &str) -> Result<&'a [T], PersistError> {
    let size = std::mem::size_of::<T>();
    if !bytes.len().is_multiple_of(size) {
        return Err(PersistError::Corrupt(format!(
            "section {tag:?} length {} is not a multiple of {size}",
            bytes.len()
        )));
    }
    if !(bytes.as_ptr() as usize).is_multiple_of(std::mem::align_of::<T>()) {
        return Err(PersistError::Corrupt(format!(
            "section {tag:?} is misaligned for its element type"
        )));
    }
    // SAFETY: length and alignment are checked above, and every bit
    // pattern is a valid u32/u64/f64 (Scalar is sealed to those).
    Ok(unsafe { std::slice::from_raw_parts(bytes.as_ptr() as *const T, bytes.len() / size) })
}

/// Sealed marker for the plain-old-data scalars sections may hold.
trait Scalar: Copy {}
impl Scalar for u32 {}
impl Scalar for u64 {}
impl Scalar for f64 {}

#[cfg(test)]
mod tests {
    use super::*;

    fn tmp(name: &str) -> std::path::PathBuf {
        let dir = std::env::temp_dir().join(format!("mgp_snapshot_{}", std::process::id()));
        std::fs::create_dir_all(&dir).unwrap();
        dir.join(name)
    }

    fn sample(path: &Path) {
        let mut w = SnapshotWriter::new();
        w.add_section("META", b"{\"v\":1}".to_vec()).unwrap();
        w.add_u32s("IDS", &[1, 2, 3, u32::MAX]).unwrap();
        w.add_u64s("COUNTS", &[10, 0, u64::MAX]).unwrap();
        w.add_f64s("SCORES", &[0.5, -1.25, f64::NEG_INFINITY, f64::NAN])
            .unwrap();
        w.finish(path).unwrap();
    }

    #[test]
    fn roundtrip_typed_sections() {
        let path = tmp("basic.snap");
        sample(&path);
        let s = Snapshot::open(&path).unwrap();
        assert_eq!(s.tags(), vec!["META", "IDS", "COUNTS", "SCORES"]);
        assert_eq!(s.section("META").unwrap(), b"{\"v\":1}");
        assert_eq!(s.u32s("IDS").unwrap(), &[1, 2, 3, u32::MAX]);
        assert_eq!(s.u64s("COUNTS").unwrap(), &[10, 0, u64::MAX]);
        let f = s.f64s("SCORES").unwrap();
        assert_eq!(f[0], 0.5);
        assert_eq!(f[1], -1.25);
        assert_eq!(f[2], f64::NEG_INFINITY);
        assert!(f[3].is_nan());
        assert!(s.section("NOPE").is_none());
        assert!(s.require("NOPE").is_err());
        std::fs::remove_file(path).ok();
    }

    #[test]
    fn sections_are_page_aligned() {
        let path = tmp("aligned.snap");
        sample(&path);
        let bytes = std::fs::read(&path).unwrap();
        let s = Snapshot::open(&path).unwrap();
        for tag in ["META", "IDS", "COUNTS", "SCORES"] {
            let sec = s.section(tag).unwrap();
            let off = sec.as_ptr() as usize - s.map.as_bytes().as_ptr() as usize;
            assert_eq!(off % SECTION_ALIGN, 0, "{tag} misaligned");
            assert!(off + sec.len() <= bytes.len());
        }
        std::fs::remove_file(path).ok();
    }

    #[test]
    fn rejects_bitflips_anywhere() {
        let path = tmp("flips.snap");
        sample(&path);
        let clean = std::fs::read(&path).unwrap();
        // Flip a byte in each section region and in the table.
        for at in [0usize, 9, 20, 4096, 8192, 12288, 16384] {
            if at >= clean.len() {
                continue;
            }
            let mut bad = clean.clone();
            bad[at] ^= 0xFF;
            std::fs::write(&path, &bad).unwrap();
            assert!(Snapshot::open(&path).is_err(), "flip at {at} accepted");
        }
        std::fs::write(&path, &clean).unwrap();
        assert!(Snapshot::open(&path).is_ok());
        std::fs::remove_file(path).ok();
    }

    #[test]
    fn rejects_hostile_section_table() {
        let path = tmp("hostile.snap");
        // Huge section count whose table-size product would wrap.
        let mut buf = Vec::new();
        buf.extend_from_slice(MAGIC);
        buf.extend_from_slice(&u64::MAX.to_le_bytes());
        std::fs::write(&path, &buf).unwrap();
        assert!(matches!(
            Snapshot::open(&path),
            Err(PersistError::Corrupt(_))
        ));

        // One entry whose offset+len wraps around usize, with a correct
        // table checksum so the wrap check itself is what rejects it.
        let mut buf = Vec::new();
        buf.extend_from_slice(MAGIC);
        buf.extend_from_slice(&1u64.to_le_bytes());
        buf.extend_from_slice(b"EVIL\0\0\0\0");
        buf.extend_from_slice(&(u64::MAX - 4095).to_le_bytes()); // offset (aligned)
        buf.extend_from_slice(&4096u64.to_le_bytes()); // len wraps past 0
        buf.extend_from_slice(&0u64.to_le_bytes());
        let crc = crate::crc32(&buf);
        buf.extend_from_slice(&crc.to_le_bytes());
        std::fs::write(&path, &buf).unwrap();
        assert!(matches!(
            Snapshot::open(&path),
            Err(PersistError::Corrupt(_))
        ));
        std::fs::remove_file(path).ok();
    }

    #[test]
    fn rejects_truncated_files() {
        let path = tmp("trunc.snap");
        sample(&path);
        let clean = std::fs::read(&path).unwrap();
        for cut in [0, 4, 15, 40, 4095, 4100] {
            if cut >= clean.len() {
                continue;
            }
            std::fs::write(&path, &clean[..cut]).unwrap();
            assert!(Snapshot::open(&path).is_err(), "prefix {cut} accepted");
        }
        std::fs::remove_file(path).ok();
    }

    #[test]
    fn writer_rejects_bad_tags() {
        let mut w = SnapshotWriter::new();
        assert!(w.add_section("", vec![]).is_err());
        assert!(w.add_section("LONGERTHAN8", vec![]).is_err());
        assert!(w.add_section("ok", vec![]).is_ok());
        assert!(w.add_section("ok", vec![]).is_err(), "duplicate accepted");
    }

    #[test]
    fn empty_snapshot_roundtrips() {
        let path = tmp("empty.snap");
        SnapshotWriter::new().finish(&path).unwrap();
        let s = Snapshot::open(&path).unwrap();
        assert!(s.tags().is_empty());
        std::fs::remove_file(path).ok();
    }
}

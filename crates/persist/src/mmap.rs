//! Read-only file mapping without external crates: on unix the mapping
//! goes through raw `mmap(2)`/`munmap(2)` declarations (libc is already
//! linked by std); elsewhere the file is read into an 8-byte-aligned
//! heap buffer with the same interface. Either way the base address is
//! at least 8-byte aligned, so page-aligned section offsets stay aligned
//! for every scalar type the snapshot stores (`u32`/`u64`/`f64`).

use std::fs::File;
use std::io;
use std::path::Path;

#[cfg(unix)]
mod sys {
    use std::ffi::c_void;

    pub const PROT_READ: i32 = 1;
    pub const MAP_PRIVATE: i32 = 2;
    pub const MAP_FAILED: *mut c_void = usize::MAX as *mut c_void;

    extern "C" {
        pub fn mmap(
            addr: *mut c_void,
            len: usize,
            prot: i32,
            flags: i32,
            fd: i32,
            offset: i64,
        ) -> *mut c_void;
        pub fn munmap(addr: *mut c_void, len: usize) -> i32;
    }
}

/// A read-only view of a whole file, memory-mapped where the platform
/// allows and heap-backed otherwise. The bytes are reachable via
/// [`MappedFile::as_bytes`] for the lifetime of the value.
#[derive(Debug)]
pub struct MappedFile {
    ptr: *const u8,
    len: usize,
    backing: Backing,
}

#[derive(Debug)]
enum Backing {
    /// `munmap` on drop.
    #[cfg(unix)]
    Mmap,
    /// The u64 backing guarantees 8-byte base alignment.
    Heap(#[allow(dead_code)] Vec<u64>),
}

// The mapping is read-only and the pointer is owned exclusively by this
// value until drop, so sharing references across threads is safe.
unsafe impl Send for MappedFile {}
unsafe impl Sync for MappedFile {}

impl MappedFile {
    /// Maps `path` read-only. On unix this is a true `mmap` (the kernel
    /// pages data in lazily — opening a multi-GB snapshot costs no read
    /// I/O up front); on other platforms the file is read eagerly into
    /// an aligned buffer. Empty files yield an empty mapping.
    pub fn open(path: impl AsRef<Path>) -> io::Result<Self> {
        let file = File::open(path.as_ref())?;
        let len = file.metadata()?.len();
        let len = usize::try_from(len).map_err(|_| {
            io::Error::new(io::ErrorKind::InvalidData, "file exceeds address space")
        })?;
        if len == 0 {
            return Ok(MappedFile {
                ptr: std::ptr::NonNull::<u64>::dangling().as_ptr() as *const u8,
                len: 0,
                backing: Backing::Heap(Vec::new()),
            });
        }

        #[cfg(unix)]
        {
            use std::os::unix::io::AsRawFd;
            // SAFETY: fd is a valid open file, len is its exact size,
            // and PROT_READ/MAP_PRIVATE request a read-only private
            // mapping the kernel owns until the matching munmap in Drop.
            let ptr = unsafe {
                sys::mmap(
                    std::ptr::null_mut(),
                    len,
                    sys::PROT_READ,
                    sys::MAP_PRIVATE,
                    file.as_raw_fd(),
                    0,
                )
            };
            if ptr != sys::MAP_FAILED {
                return Ok(MappedFile {
                    ptr: ptr as *const u8,
                    len,
                    backing: Backing::Mmap,
                });
            }
            // Fall through to the heap path (e.g. a filesystem that
            // refuses mmap); correctness does not depend on mapping.
        }

        Self::read_heap(file, len)
    }

    fn read_heap(mut file: File, len: usize) -> io::Result<Self> {
        use std::io::Read;
        let mut buf: Vec<u64> = vec![0; len.div_ceil(8)];
        // SAFETY: the u64 buffer owns at least `len` writable bytes; u8
        // has no validity constraints.
        let bytes = unsafe { std::slice::from_raw_parts_mut(buf.as_mut_ptr() as *mut u8, len) };
        file.read_exact(bytes)?;
        Ok(MappedFile {
            ptr: buf.as_ptr() as *const u8,
            len,
            backing: Backing::Heap(buf),
        })
    }

    /// The mapped contents.
    pub fn as_bytes(&self) -> &[u8] {
        if self.len == 0 {
            return &[];
        }
        // SAFETY: ptr/len describe the live mapping (or heap buffer)
        // owned by self; the memory is immutable for self's lifetime.
        unsafe { std::slice::from_raw_parts(self.ptr, self.len) }
    }

    /// Number of mapped bytes.
    pub fn len(&self) -> usize {
        self.len
    }

    /// Whether the file was empty.
    pub fn is_empty(&self) -> bool {
        self.len == 0
    }
}

impl Drop for MappedFile {
    fn drop(&mut self) {
        #[cfg(unix)]
        if matches!(self.backing, Backing::Mmap) {
            // SAFETY: ptr/len came from a successful mmap of this length
            // and are unmapped exactly once.
            unsafe {
                sys::munmap(self.ptr as *mut std::ffi::c_void, self.len);
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn tmp(name: &str, contents: &[u8]) -> std::path::PathBuf {
        let dir = std::env::temp_dir().join(format!("mgp_mmap_{}", std::process::id()));
        std::fs::create_dir_all(&dir).unwrap();
        let path = dir.join(name);
        std::fs::write(&path, contents).unwrap();
        path
    }

    #[test]
    fn maps_file_contents() {
        let path = tmp("small.bin", b"hello mapped world");
        let map = MappedFile::open(&path).unwrap();
        assert_eq!(map.as_bytes(), b"hello mapped world");
        assert_eq!(map.len(), 18);
        std::fs::remove_file(path).ok();
    }

    #[test]
    fn empty_file_maps_empty() {
        let path = tmp("empty.bin", b"");
        let map = MappedFile::open(&path).unwrap();
        assert!(map.is_empty());
        assert_eq!(map.as_bytes(), b"");
        std::fs::remove_file(path).ok();
    }

    #[test]
    fn base_is_8_byte_aligned() {
        let path = tmp("aligned.bin", &[7u8; 4096 * 2 + 3]);
        let map = MappedFile::open(&path).unwrap();
        assert_eq!(map.as_bytes().as_ptr() as usize % 8, 0);
        assert!(map.as_bytes().iter().all(|&b| b == 7));
        std::fs::remove_file(path).ok();
    }

    #[test]
    fn heap_fallback_matches() {
        let path = tmp("heap.bin", b"fallback contents!");
        let len = std::fs::metadata(&path).unwrap().len() as usize;
        let map = MappedFile::read_heap(File::open(&path).unwrap(), len).unwrap();
        assert_eq!(map.as_bytes(), b"fallback contents!");
        assert_eq!(map.as_bytes().as_ptr() as usize % 8, 0);
        std::fs::remove_file(path).ok();
    }

    #[test]
    fn missing_file_is_io_error() {
        assert!(MappedFile::open("/definitely/not/here.snap").is_err());
    }
}

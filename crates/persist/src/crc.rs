//! CRC-32 (IEEE 802.3, the zlib/`crc32fast` polynomial), table-driven.
//! Vendored because the build environment is offline; the table is a
//! compile-time constant so there is no runtime init.

const fn build_table() -> [u32; 256] {
    let mut table = [0u32; 256];
    let mut i = 0;
    while i < 256 {
        let mut c = i as u32;
        let mut k = 0;
        while k < 8 {
            c = if c & 1 != 0 {
                0xEDB8_8320 ^ (c >> 1)
            } else {
                c >> 1
            };
            k += 1;
        }
        table[i] = c;
        i += 1;
    }
    table
}

static TABLE: [u32; 256] = build_table();

/// CRC-32 of `bytes` (IEEE polynomial, standard init/final XOR — matches
/// zlib's `crc32` and the `crc32fast` crate).
pub fn crc32(bytes: &[u8]) -> u32 {
    crc32_update(0xFFFF_FFFF, bytes) ^ 0xFFFF_FFFF
}

/// Streaming form: feed `state` (start from `0xFFFF_FFFF`, finish by
/// XORing with `0xFFFF_FFFF`) through successive chunks.
pub(crate) fn crc32_update(mut state: u32, bytes: &[u8]) -> u32 {
    for &b in bytes {
        state = TABLE[((state ^ b as u32) & 0xFF) as usize] ^ (state >> 8);
    }
    state
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn known_vectors() {
        // The canonical check value for this polynomial.
        assert_eq!(crc32(b"123456789"), 0xCBF4_3926);
        assert_eq!(crc32(b""), 0);
        assert_eq!(crc32(b"a"), 0xE8B7_BE43);
    }

    #[test]
    fn streaming_matches_oneshot() {
        let data = b"the quick brown fox jumps over the lazy dog";
        let oneshot = crc32(data);
        let mut s = 0xFFFF_FFFF;
        for chunk in data.chunks(7) {
            s = crc32_update(s, chunk);
        }
        assert_eq!(s ^ 0xFFFF_FFFF, oneshot);
    }

    #[test]
    fn detects_single_bit_flips() {
        let mut data = b"some payload worth protecting".to_vec();
        let clean = crc32(&data);
        for i in 0..data.len() * 8 {
            data[i / 8] ^= 1 << (i % 8);
            assert_ne!(crc32(&data), clean, "bit {i} flip undetected");
            data[i / 8] ^= 1 << (i % 8);
        }
    }
}

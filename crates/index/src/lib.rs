//! # mgp-index — the metagraph vector index
//!
//! After matching, the offline phase *indexes* the instances: for every
//! anchor node `x` the vector `m_x` (Eq. 2) and for every co-occurring
//! anchor pair `{x, y}` the vector `m_xy` (Eq. 1), each with one coordinate
//! per metagraph. These vectors are all MGP needs at training and query
//! time — the instances themselves are discarded.
//!
//! The index stores the vectors *sparsely per node/pair* (most nodes occur
//! in few metagraphs) with counts already transformed (`log1p` by default,
//! per the remark under Eq. 2 that counts may be transformed, which tames
//! heavy-tailed instance counts). It also keeps, per anchor node, the list
//! of partners it shares at least one metagraph instance with — the online
//! phase ranks exactly these candidates, everything else has proximity 0.
//!
//! [`VectorIndex::restrict`] projects the index onto a subset of metagraphs
//! with remapped coordinates; dual-stage training uses this to train on the
//! seed set and on seed+candidate sets without re-matching anything.
//!
//! For live graphs, [`VectorIndex::apply_delta`] ingests *signed*
//! per-coordinate count changes (an [`IndexDelta`] of
//! [`mgp_matching::CountDelta`]s, produced by the incremental matcher)
//! and recomputes only the touched vectors and partner lists — raw counts
//! are kept alongside the transformed values precisely so the non-linear
//! transforms can be reapplied locally. Decrements that zero a coordinate
//! drop it; vectors, pairs and partner links that empty out are removed
//! entirely, so churn that nets to nothing restores the index
//! bit-identically (no tombstoned empties). The returned [`IndexTouch`]
//! tells the serving layer which anchors/pairs to re-dot.
//!
//! When several classes serve the same graph, their restricted indexes
//! share the underlying per-pattern changes: an [`IndexDeltaBatch`] holds
//! each changed pattern's [`CountDelta`] once (keyed by global pattern
//! index) and [`IndexDeltaBatch::apply_to`] fans it out to every class's
//! coordinate list by reference — one delta-match feeds all classes.

#![warn(missing_docs)]

use mgp_graph::ids::pack_pair;
use mgp_graph::{FxHashMap, NodeId};
use mgp_matching::{AnchorCounts, CountDelta, CountUnderflow};
use serde::{Deserialize, Serialize};

/// How raw instance counts become vector entries.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default, Serialize, Deserialize)]
pub enum Transform {
    /// Keep raw counts.
    Raw,
    /// `ln(1 + count)` — the default, robust to heavy-tailed counts.
    #[default]
    Log1p,
    /// Presence only (1 if the count is positive). Useful when hub-heavy
    /// patterns inflate counts without carrying more information.
    Binary,
}

impl Transform {
    /// Applies the transform to a raw count.
    #[inline]
    pub fn apply(self, count: u64) -> f64 {
        match self {
            Transform::Raw => count as f64,
            Transform::Log1p => (1.0 + count as f64).ln(),
            Transform::Binary => f64::from(count > 0),
        }
    }
}

/// A sparse vector over metagraph coordinates: `(metagraph index,
/// transformed count)`, sorted by index.
pub type SparseVec = Vec<(u32, f64)>;

/// A sparse vector of *raw* counts, sorted by coordinate. Kept alongside
/// the transformed vectors because the transforms are non-linear: applying
/// a count increment requires the old raw count, not the old `f64`.
pub type RawVec = Vec<(u32, u64)>;

/// The metagraph vector index (Eq. 1–2 materialised for all nodes/pairs).
#[derive(Debug, Clone, Default, Serialize, Deserialize)]
pub struct VectorIndex {
    n_metagraphs: usize,
    transform: Transform,
    node_vecs: FxHashMap<u32, SparseVec>,
    pair_vecs: FxHashMap<u64, SparseVec>,
    partners: FxHashMap<u32, Vec<u32>>,
    node_raw: FxHashMap<u32, RawVec>,
    pair_raw: FxHashMap<u64, RawVec>,
}

impl VectorIndex {
    /// Builds the index from per-metagraph anchor counts (coordinate `i`
    /// comes from `counts[i]`).
    pub fn from_counts(counts: &[AnchorCounts], transform: Transform) -> Self {
        let mut node_vecs: FxHashMap<u32, SparseVec> = FxHashMap::default();
        let mut pair_vecs: FxHashMap<u64, SparseVec> = FxHashMap::default();
        let mut partners: FxHashMap<u32, Vec<u32>> = FxHashMap::default();
        let mut node_raw: FxHashMap<u32, RawVec> = FxHashMap::default();
        let mut pair_raw: FxHashMap<u64, RawVec> = FxHashMap::default();

        for (i, c) in counts.iter().enumerate() {
            let i = i as u32;
            for (&x, &cnt) in &c.per_node {
                node_vecs
                    .entry(x)
                    .or_default()
                    .push((i, transform.apply(cnt)));
                node_raw.entry(x).or_default().push((i, cnt));
            }
            for (&key, &cnt) in &c.per_pair {
                pair_vecs
                    .entry(key)
                    .or_default()
                    .push((i, transform.apply(cnt)));
                pair_raw.entry(key).or_default().push((i, cnt));
            }
        }
        for v in node_vecs.values_mut() {
            v.sort_unstable_by_key(|&(i, _)| i);
        }
        for v in node_raw.values_mut() {
            v.sort_unstable_by_key(|&(i, _)| i);
        }
        for v in pair_raw.values_mut() {
            v.sort_unstable_by_key(|&(i, _)| i);
        }
        for (key, v) in pair_vecs.iter_mut() {
            v.sort_unstable_by_key(|&(i, _)| i);
            let (x, y) = mgp_graph::ids::unpack_pair(*key);
            partners.entry(x.0).or_default().push(y.0);
            partners.entry(y.0).or_default().push(x.0);
        }
        for v in partners.values_mut() {
            v.sort_unstable();
            v.dedup();
        }
        VectorIndex {
            n_metagraphs: counts.len(),
            transform,
            node_vecs,
            pair_vecs,
            partners,
            node_raw,
            pair_raw,
        }
    }

    /// Rebuilds an index from its raw-count columns — the warm-start
    /// path of the `mgp-persist` snapshot format, which stores only
    /// `(key, coord, raw count)` triples. The transformed sparse vectors
    /// and partner lists are pure functions of the raw counts (every
    /// [`Transform`] is deterministic per entry and the vectors are
    /// coordinate-sorted), so the result is **bit-identical** to the
    /// index the raw columns were exported from, regardless of hash-map
    /// iteration order at export time.
    ///
    /// Each raw vector must be coordinate-sorted with strictly positive
    /// counts and in-range coordinates — the invariant
    /// [`VectorIndex::iter_node_raw`]/[`VectorIndex::iter_pair_raw`]
    /// exports. Violations are rejected with a message naming the
    /// offending key.
    pub fn from_raw_parts(
        n_metagraphs: usize,
        transform: Transform,
        node_raw: FxHashMap<u32, RawVec>,
        pair_raw: FxHashMap<u64, RawVec>,
    ) -> Result<Self, String> {
        for (key, v) in node_raw
            .iter()
            .map(|(k, v)| (*k as u64, v))
            .chain(pair_raw.iter().map(|(k, v)| (*k, v)))
        {
            if v.is_empty() {
                return Err(format!("raw vector of key {key} is empty"));
            }
            for pair in v.windows(2) {
                if pair[0].0 >= pair[1].0 {
                    return Err(format!("raw vector of key {key} is not coordinate-sorted"));
                }
            }
            for &(coord, cnt) in v {
                if coord as usize >= n_metagraphs {
                    return Err(format!(
                        "raw vector of key {key} has coordinate {coord} out of range"
                    ));
                }
                if cnt == 0 {
                    return Err(format!("raw vector of key {key} stores a zero count"));
                }
            }
        }

        let apply = |v: &RawVec| -> SparseVec {
            v.iter()
                .map(|&(i, cnt)| (i, transform.apply(cnt)))
                .collect()
        };
        let node_vecs: FxHashMap<u32, SparseVec> =
            node_raw.iter().map(|(&x, v)| (x, apply(v))).collect();
        let pair_vecs: FxHashMap<u64, SparseVec> =
            pair_raw.iter().map(|(&k, v)| (k, apply(v))).collect();
        let mut partners: FxHashMap<u32, Vec<u32>> = FxHashMap::default();
        for &key in pair_vecs.keys() {
            let (x, y) = mgp_graph::ids::unpack_pair(key);
            partners.entry(x.0).or_default().push(y.0);
            partners.entry(y.0).or_default().push(x.0);
        }
        for v in partners.values_mut() {
            v.sort_unstable();
            v.dedup();
        }
        Ok(VectorIndex {
            n_metagraphs,
            transform,
            node_vecs,
            pair_vecs,
            partners,
            node_raw,
            pair_raw,
        })
    }

    /// Iterates over every `(node, raw counts)` column, in arbitrary
    /// order — the snapshot export path ([`VectorIndex::from_raw_parts`]
    /// is the inverse). Each column is coordinate-sorted.
    pub fn iter_node_raw(&self) -> impl Iterator<Item = (NodeId, &[(u32, u64)])> {
        self.node_raw
            .iter()
            .map(|(&x, v)| (NodeId(x), v.as_slice()))
    }

    /// Iterates over every `(packed pair, raw counts)` column, in
    /// arbitrary order (unpack with [`mgp_graph::ids::unpack_pair`]).
    pub fn iter_pair_raw(&self) -> impl Iterator<Item = (u64, &[(u32, u64)])> {
        self.pair_raw.iter().map(|(&k, v)| (k, v.as_slice()))
    }

    /// Number of metagraph coordinates `|M|`.
    pub fn n_metagraphs(&self) -> usize {
        self.n_metagraphs
    }

    /// The transform the index was built with.
    pub fn transform(&self) -> Transform {
        self.transform
    }

    /// Sparse `m_x` of a node (empty slice if absent from all metagraphs).
    pub fn node_vec(&self, x: NodeId) -> &[(u32, f64)] {
        self.node_vecs.get(&x.0).map(Vec::as_slice).unwrap_or(&[])
    }

    /// Sparse `m_xy` of an unordered pair.
    pub fn pair_vec(&self, x: NodeId, y: NodeId) -> &[(u32, f64)] {
        self.pair_vecs
            .get(&pack_pair(x, y))
            .map(Vec::as_slice)
            .unwrap_or(&[])
    }

    /// The anchors sharing at least one metagraph instance with `x` —
    /// the only nodes with non-zero MGP proximity to `x`.
    pub fn partners(&self, x: NodeId) -> &[u32] {
        self.partners.get(&x.0).map(Vec::as_slice).unwrap_or(&[])
    }

    /// Number of distinct anchor nodes appearing in the index.
    pub fn n_nodes(&self) -> usize {
        self.node_vecs.len()
    }

    /// Number of distinct anchor pairs appearing in the index.
    pub fn n_pairs(&self) -> usize {
        self.pair_vecs.len()
    }

    /// `m_x · w`.
    pub fn dot_node(&self, x: NodeId, w: &[f64]) -> f64 {
        dot(self.node_vec(x), w)
    }

    /// `m_xy · w`.
    pub fn dot_pair(&self, x: NodeId, y: NodeId, w: &[f64]) -> f64 {
        dot(self.pair_vec(x, y), w)
    }

    /// Iterates over every `(node, m_x)` entry, in arbitrary order.
    ///
    /// This is the bulk-export path used by `mgp-online` to precompute
    /// `m_x · w` tables at class-registration time.
    pub fn iter_nodes(&self) -> impl Iterator<Item = (NodeId, &[(u32, f64)])> {
        self.node_vecs
            .iter()
            .map(|(&x, v)| (NodeId(x), v.as_slice()))
    }

    /// Iterates over every `(packed pair, m_xy)` entry, in arbitrary order
    /// (unpack with [`mgp_graph::ids::unpack_pair`]).
    pub fn iter_pairs(&self) -> impl Iterator<Item = (u64, &[(u32, f64)])> {
        self.pair_vecs.iter().map(|(&k, v)| (k, v.as_slice()))
    }

    /// Iterates over every `(node, partner list)` entry, in arbitrary
    /// order; each list is ascending and deduplicated.
    pub fn iter_partners(&self) -> impl Iterator<Item = (NodeId, &[u32])> {
        self.partners
            .iter()
            .map(|(&x, v)| (NodeId(x), v.as_slice()))
    }

    /// Projects the index onto the metagraph subset `keep` (indices into
    /// the original coordinates); coordinate `j` of the result corresponds
    /// to `keep[j]`.
    pub fn restrict(&self, keep: &[usize]) -> VectorIndex {
        let mut remap: FxHashMap<u32, u32> = FxHashMap::default();
        for (j, &i) in keep.iter().enumerate() {
            remap.insert(i as u32, j as u32);
        }
        let project = |v: &SparseVec| -> SparseVec {
            let mut out: SparseVec = v
                .iter()
                .filter_map(|&(i, c)| remap.get(&i).map(|&j| (j, c)))
                .collect();
            out.sort_unstable_by_key(|&(j, _)| j);
            out
        };
        let project_raw = |v: &RawVec| -> RawVec {
            let mut out: RawVec = v
                .iter()
                .filter_map(|&(i, c)| remap.get(&i).map(|&j| (j, c)))
                .collect();
            out.sort_unstable_by_key(|&(j, _)| j);
            out
        };
        let node_vecs: FxHashMap<u32, SparseVec> = self
            .node_vecs
            .iter()
            .map(|(&x, v)| (x, project(v)))
            .filter(|(_, v)| !v.is_empty())
            .collect();
        let pair_vecs: FxHashMap<u64, SparseVec> = self
            .pair_vecs
            .iter()
            .map(|(&k, v)| (k, project(v)))
            .filter(|(_, v)| !v.is_empty())
            .collect();
        let node_raw: FxHashMap<u32, RawVec> = self
            .node_raw
            .iter()
            .map(|(&x, v)| (x, project_raw(v)))
            .filter(|(_, v)| !v.is_empty())
            .collect();
        let pair_raw: FxHashMap<u64, RawVec> = self
            .pair_raw
            .iter()
            .map(|(&k, v)| (k, project_raw(v)))
            .filter(|(_, v)| !v.is_empty())
            .collect();
        let mut partners: FxHashMap<u32, Vec<u32>> = FxHashMap::default();
        for &key in pair_vecs.keys() {
            let (x, y) = mgp_graph::ids::unpack_pair(key);
            partners.entry(x.0).or_default().push(y.0);
            partners.entry(y.0).or_default().push(x.0);
        }
        for v in partners.values_mut() {
            v.sort_unstable();
            v.dedup();
        }
        VectorIndex {
            n_metagraphs: keep.len(),
            transform: self.transform,
            node_vecs,
            pair_vecs,
            partners,
            node_raw,
            pair_raw,
        }
    }

    /// Applies *signed* per-coordinate count changes, recomputing only
    /// the touched `m_x` / `m_xy` sparse vectors and partner lists, and
    /// returns which nodes/pairs changed so the serving layer can patch
    /// just those (including entries that vanished — their vectors read
    /// empty afterwards).
    ///
    /// The result is bit-identical to rebuilding via
    /// [`VectorIndex::from_counts`] with the merged totals: transforms
    /// are pure functions of the raw count, coordinate order inside each
    /// sparse vector is preserved by sorted insertion, and coordinates,
    /// vectors, pairs and partner links that reach zero are *dropped*,
    /// exactly as a fresh build (which never emits them) would.
    ///
    /// # Panics
    /// Panics if `delta` was built for a different number of coordinates,
    /// or if a decrement underflows a raw count (a corrupt pipeline: the
    /// delta was not produced against this index's graph).
    pub fn apply_delta(&mut self, delta: &IndexDelta) -> IndexTouch {
        assert_eq!(
            delta.counts.len(),
            self.n_metagraphs,
            "IndexDelta coordinate count mismatch"
        );
        let mut touch = IndexTouch::default();
        for (i, c) in delta.counts.iter().enumerate() {
            self.apply_coord(i as u32, c, &mut touch);
        }
        touch.normalize();
        touch
    }

    /// Verifies that applying `c` at coordinate `i` would not underflow
    /// any raw count, without mutating anything — the per-coordinate
    /// core of [`IndexDeltaBatch::check_against`]. Only decrements can
    /// underflow, so positive changes are skipped outright.
    pub fn check_coord(&self, i: u32, c: &CountDelta) -> Result<(), CountUnderflow> {
        let raw_at = |raw: Option<&RawVec>| -> u64 {
            raw.and_then(|r| {
                r.binary_search_by_key(&i, |&(j, _)| j)
                    .ok()
                    .map(|pos| r[pos].1)
            })
            .unwrap_or(0)
        };
        for (&x, &inc) in &c.per_node {
            if inc >= 0 {
                continue;
            }
            let have = raw_at(self.node_raw.get(&x));
            if (have as i128) + (inc as i128) < 0 {
                return Err(CountUnderflow {
                    node: Some(x),
                    pair: None,
                    have,
                    change: inc,
                });
            }
        }
        for (&key, &inc) in &c.per_pair {
            if inc >= 0 {
                continue;
            }
            let have = raw_at(self.pair_raw.get(&key));
            if (have as i128) + (inc as i128) < 0 {
                return Err(CountUnderflow {
                    node: None,
                    pair: Some(key),
                    have,
                    change: inc,
                });
            }
        }
        Ok(())
    }

    /// Applies one coordinate's signed changes — the shared body of
    /// [`VectorIndex::apply_delta`] and [`IndexDeltaBatch::apply_to`].
    /// Touched nodes/pairs are appended to `touch` unsorted; callers
    /// finish with [`IndexTouch::normalize`].
    fn apply_coord(&mut self, i: u32, c: &CountDelta, touch: &mut IndexTouch) {
        for (&x, &inc) in &c.per_node {
            if inc == 0 {
                continue;
            }
            let raw = self.node_raw.entry(x).or_default();
            let total = bump_signed(raw, i, inc);
            let vec = self.node_vecs.entry(x).or_default();
            if total == 0 {
                drop_coord(vec, i);
            } else {
                upsert(vec, i, self.transform.apply(total));
            }
            if raw.is_empty() {
                self.node_raw.remove(&x);
                self.node_vecs.remove(&x);
            }
            touch.nodes.push(x);
        }
        for (&key, &inc) in &c.per_pair {
            if inc == 0 {
                continue;
            }
            let raw = self.pair_raw.entry(key).or_default();
            let was_present = !raw.is_empty();
            let total = bump_signed(raw, i, inc);
            let vec = self.pair_vecs.entry(key).or_default();
            if total == 0 {
                drop_coord(vec, i);
            } else {
                upsert(vec, i, self.transform.apply(total));
            }
            let now_present = !raw.is_empty();
            if !now_present {
                self.pair_raw.remove(&key);
                self.pair_vecs.remove(&key);
            }
            let (x, y) = mgp_graph::ids::unpack_pair(key);
            if !was_present && now_present {
                insert_sorted(self.partners.entry(x.0).or_default(), y.0);
                insert_sorted(self.partners.entry(y.0).or_default(), x.0);
            } else if was_present && !now_present {
                remove_partner(&mut self.partners, x.0, y.0);
                remove_partner(&mut self.partners, y.0, x.0);
            }
            touch.pairs.push(key);
        }
    }
}

/// Per-coordinate *signed* [`CountDelta`]s for a churn update:
/// `counts[i]` carries the net count changes (new instances minus doomed
/// instances) of the metagraph backing coordinate `i` (see
/// `mgp_matching::delta_count_changes`).
#[derive(Debug, Clone, Default)]
pub struct IndexDelta {
    /// One signed change set per index coordinate, in coordinate order.
    pub counts: Vec<CountDelta>,
}

impl IndexDelta {
    /// A delta over `n` coordinates with all changes empty.
    pub fn empty(n: usize) -> Self {
        IndexDelta {
            counts: vec![CountDelta::default(); n],
        }
    }

    /// A pure-insertion delta (every change positive) from per-coordinate
    /// anchor-count increments.
    pub fn from_increments(counts: &[AnchorCounts]) -> Self {
        IndexDelta {
            counts: counts.iter().map(CountDelta::from).collect(),
        }
    }

    /// Whether every coordinate's change set is empty.
    pub fn is_empty(&self) -> bool {
        self.counts.iter().all(|c| c.is_empty())
    }
}

/// A **fused multi-class** index delta: the shared per-pattern signed
/// count changes of one graph event, keyed by *global* pattern index.
///
/// One ingest delta-matches every pattern exactly once; the resulting
/// [`CountDelta`]s land here and are fanned out to every class whose
/// coordinate list uses the pattern via [`IndexDeltaBatch::apply_to`] —
/// no per-class cloning, no per-class re-enumeration. A class whose
/// coordinates miss every changed pattern gets an empty touch for free.
#[derive(Debug, Clone, Default)]
pub struct IndexDeltaBatch {
    changes: FxHashMap<usize, CountDelta>,
}

impl IndexDeltaBatch {
    /// Records the signed change of a global pattern. Empty changes are
    /// dropped so the fan-out below skips them without a lookup.
    pub fn insert(&mut self, pattern: usize, change: CountDelta) {
        if !change.is_empty() {
            self.changes.insert(pattern, change);
        }
    }

    /// The shared change of a global pattern, if it changed at all.
    pub fn get(&self, pattern: usize) -> Option<&CountDelta> {
        self.changes.get(&pattern)
    }

    /// Number of patterns with a non-empty change.
    pub fn len(&self) -> usize {
        self.changes.len()
    }

    /// Whether no pattern changed.
    pub fn is_empty(&self) -> bool {
        self.changes.is_empty()
    }

    /// Applies the batch to one class's restricted index: coordinate `j`
    /// of `index` takes the shared change of global pattern `coords[j]`,
    /// borrowed straight from the batch. Semantically identical to
    /// building a per-class [`IndexDelta`] and calling
    /// [`VectorIndex::apply_delta`], without materialising it.
    ///
    /// # Panics
    /// Panics if `coords.len()` disagrees with the index's coordinate
    /// count (the coords list is not the one the index was restricted to).
    pub fn apply_to(&self, index: &mut VectorIndex, coords: &[usize]) -> IndexTouch {
        assert_eq!(
            coords.len(),
            index.n_metagraphs,
            "IndexDeltaBatch coordinate list mismatch"
        );
        let mut touch = IndexTouch::default();
        for (j, g) in coords.iter().enumerate() {
            if let Some(c) = self.changes.get(g) {
                index.apply_coord(j as u32, c, &mut touch);
            }
        }
        touch.normalize();
        touch
    }

    /// Verifies that [`IndexDeltaBatch::apply_to`] would not underflow
    /// any raw count of `index`, **without mutating anything** — the
    /// validation gate the engine runs before committing an ingest to a
    /// class index (a stale or foreign index, e.g. one imported from a
    /// model trained on a different graph, fails here as a typed error
    /// instead of panicking mid-mutation). Returns the first offending
    /// coordinate.
    ///
    /// # Panics
    /// Panics if `coords.len()` disagrees with the index's coordinate
    /// count — a caller bug, exactly as in [`IndexDeltaBatch::apply_to`].
    pub fn check_against(
        &self,
        index: &VectorIndex,
        coords: &[usize],
    ) -> Result<(), IndexUnderflow> {
        assert_eq!(
            coords.len(),
            index.n_metagraphs,
            "IndexDeltaBatch coordinate list mismatch"
        );
        for (j, g) in coords.iter().enumerate() {
            let Some(c) = self.changes.get(g) else {
                continue;
            };
            index
                .check_coord(j as u32, c)
                .map_err(|underflow| IndexUnderflow {
                    coordinate: j as u32,
                    underflow,
                })?;
        }
        Ok(())
    }
}

/// A would-be raw-count underflow found by
/// [`IndexDeltaBatch::check_against`] / [`VectorIndex::check_coord`]:
/// applying the signed change to this coordinate of this entry's vector
/// would drive the count negative, i.e. the delta was not produced
/// against the graph this index was built from.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct IndexUnderflow {
    /// The (restricted) coordinate that would underflow.
    pub coordinate: u32,
    /// The offending entry and amounts.
    pub underflow: CountUnderflow,
}

impl std::fmt::Display for IndexUnderflow {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(f, "coordinate {}: {}", self.coordinate, self.underflow)
    }
}

impl std::error::Error for IndexUnderflow {}

/// The nodes and pairs whose vectors changed in a
/// [`VectorIndex::apply_delta`] — the exact set the serving layer must
/// re-dot and re-patch. Both lists are ascending and deduplicated.
#[derive(Debug, Clone, Default, PartialEq, Eq)]
pub struct IndexTouch {
    /// Anchor nodes whose `m_x` changed.
    pub nodes: Vec<u32>,
    /// Packed pairs (see [`mgp_graph::ids::pack_pair`]) whose `m_xy`
    /// changed; includes pairs that are entirely new.
    pub pairs: Vec<u64>,
}

impl IndexTouch {
    /// Whether nothing was touched.
    pub fn is_empty(&self) -> bool {
        self.nodes.is_empty() && self.pairs.is_empty()
    }

    /// Sorts and deduplicates both lists (idempotent).
    fn normalize(&mut self) {
        self.nodes.sort_unstable();
        self.nodes.dedup();
        self.pairs.sort_unstable();
        self.pairs.dedup();
    }
}

/// Adds signed `inc` to coordinate `i` of a sorted raw vector, removing
/// the coordinate when it cancels to zero, and returns the new total.
/// Panics on underflow (the delta was not built against these counts).
fn bump_signed(raw: &mut RawVec, i: u32, inc: i64) -> u64 {
    match raw.binary_search_by_key(&i, |&(j, _)| j) {
        Ok(pos) => {
            let total = raw[pos].1 as i64 + inc;
            assert!(
                total >= 0,
                "count underflow at coordinate {i}: {} + {inc}",
                raw[pos].1
            );
            if total == 0 {
                raw.remove(pos);
                0
            } else {
                raw[pos].1 = total as u64;
                total as u64
            }
        }
        Err(pos) => {
            assert!(inc >= 0, "count underflow at coordinate {i}: 0 + {inc}");
            raw.insert(pos, (i, inc as u64));
            inc as u64
        }
    }
}

/// Sets coordinate `i` of a sorted sparse vector to `val`.
fn upsert(vec: &mut SparseVec, i: u32, val: f64) {
    match vec.binary_search_by_key(&i, |&(j, _)| j) {
        Ok(pos) => vec[pos].1 = val,
        Err(pos) => vec.insert(pos, (i, val)),
    }
}

/// Removes coordinate `i` from a sorted sparse vector if present.
fn drop_coord(vec: &mut SparseVec, i: u32) {
    if let Ok(pos) = vec.binary_search_by_key(&i, |&(j, _)| j) {
        vec.remove(pos);
    }
}

/// Inserts `v` into an ascending deduplicated list.
fn insert_sorted(list: &mut Vec<u32>, v: u32) {
    if let Err(pos) = list.binary_search(&v) {
        list.insert(pos, v);
    }
}

/// Removes `v` from `x`'s partner list, dropping the list entirely when
/// it empties (a fresh build never materialises empty partner lists).
fn remove_partner(partners: &mut FxHashMap<u32, Vec<u32>>, x: u32, v: u32) {
    if let Some(list) = partners.get_mut(&x) {
        if let Ok(pos) = list.binary_search(&v) {
            list.remove(pos);
        }
        if list.is_empty() {
            partners.remove(&x);
        }
    }
}

/// Sparse · dense dot product.
#[inline]
pub fn dot(sparse: &[(u32, f64)], w: &[f64]) -> f64 {
    sparse.iter().map(|&(i, c)| c * w[i as usize]).sum()
}

#[cfg(test)]
mod tests {
    use super::*;
    use mgp_graph::FxHashMap as Map;

    fn counts(node: &[(u32, u64)], pairs: &[((u32, u32), u64)]) -> AnchorCounts {
        let mut per_node: Map<u32, u64> = Map::default();
        for &(x, c) in node {
            per_node.insert(x, c);
        }
        let mut per_pair: Map<u64, u64> = Map::default();
        for &((x, y), c) in pairs {
            per_pair.insert(pack_pair(NodeId(x), NodeId(y)), c);
        }
        AnchorCounts {
            per_node,
            per_pair,
            n_instances: 0,
        }
    }

    fn sample_index(transform: Transform) -> VectorIndex {
        // M0: pairs (1,2) count 3; M1: pairs (1,3) count 2.
        let c0 = counts(&[(1, 3), (2, 3)], &[((1, 2), 3)]);
        let c1 = counts(&[(1, 2), (3, 2)], &[((1, 3), 2)]);
        VectorIndex::from_counts(&[c0, c1], transform)
    }

    #[test]
    fn vectors_and_dots_raw() {
        let idx = sample_index(Transform::Raw);
        assert_eq!(idx.n_metagraphs(), 2);
        assert_eq!(idx.node_vec(NodeId(1)), &[(0, 3.0), (1, 2.0)]);
        assert_eq!(idx.pair_vec(NodeId(2), NodeId(1)), &[(0, 3.0)]);
        let w = vec![0.5, 1.0];
        assert_eq!(idx.dot_node(NodeId(1), &w), 3.5);
        assert_eq!(idx.dot_pair(NodeId(1), NodeId(3), &w), 2.0);
        assert_eq!(idx.dot_pair(NodeId(2), NodeId(3), &w), 0.0);
    }

    #[test]
    fn log_transform_applied() {
        let idx = sample_index(Transform::Log1p);
        let v = idx.node_vec(NodeId(1));
        assert!((v[0].1 - 4.0f64.ln()).abs() < 1e-12);
        assert!((v[1].1 - 3.0f64.ln()).abs() < 1e-12);
    }

    #[test]
    fn binary_transform_is_presence() {
        let idx = sample_index(Transform::Binary);
        assert_eq!(idx.node_vec(NodeId(1)), &[(0, 1.0), (1, 1.0)]);
        assert_eq!(idx.pair_vec(NodeId(1), NodeId(2)), &[(0, 1.0)]);
        assert_eq!(Transform::Binary.apply(0), 0.0);
        assert_eq!(Transform::Binary.apply(100), 1.0);
    }

    /// Round-trips an index through its raw columns and asserts every
    /// observable table is restored bit-identically.
    fn assert_raw_roundtrip(idx: &VectorIndex) {
        let node_raw: Map<u32, RawVec> = idx
            .iter_node_raw()
            .map(|(x, v)| (x.0, v.to_vec()))
            .collect();
        let pair_raw: Map<u64, RawVec> =
            idx.iter_pair_raw().map(|(k, v)| (k, v.to_vec())).collect();
        let back =
            VectorIndex::from_raw_parts(idx.n_metagraphs(), idx.transform(), node_raw, pair_raw)
                .unwrap();
        assert_eq!(back.n_metagraphs(), idx.n_metagraphs());
        assert_eq!(back.transform(), idx.transform());
        assert_eq!(back.n_nodes(), idx.n_nodes());
        assert_eq!(back.n_pairs(), idx.n_pairs());
        for (x, v) in idx.iter_nodes() {
            assert_eq!(back.node_vec(x), v, "node {x:?}");
            assert_eq!(back.partners(x), idx.partners(x), "partners of {x:?}");
        }
        for (k, v) in idx.iter_pairs() {
            let (x, y) = mgp_graph::ids::unpack_pair(k);
            assert_eq!(back.pair_vec(x, y), v, "pair {k}");
        }
    }

    #[test]
    fn raw_parts_roundtrip_is_bit_identical() {
        for t in [Transform::Raw, Transform::Log1p, Transform::Binary] {
            assert_raw_roundtrip(&sample_index(t));
        }
    }

    #[test]
    fn raw_parts_roundtrip_after_delta() {
        // The export invariant must survive churn: apply a delta that
        // zeroes coordinate 0 everywhere and grows coordinate 1, then
        // round-trip.
        let mut idx = sample_index(Transform::Log1p);
        let mut c0 = CountDelta::default();
        c0.accumulate(&counts(&[(1, 3), (2, 3)], &[((1, 2), 3)]), -1);
        let mut c1 = CountDelta::default();
        c1.accumulate(&counts(&[(4, 7), (1, 1)], &[((1, 4), 7)]), 1);
        let delta = IndexDelta {
            counts: vec![c0, c1],
        };
        let _ = idx.apply_delta(&delta);
        assert_raw_roundtrip(&idx);
    }

    #[test]
    fn from_raw_parts_rejects_broken_invariants() {
        let mk = |v: RawVec| {
            let mut node_raw: Map<u32, RawVec> = Map::default();
            node_raw.insert(7, v);
            VectorIndex::from_raw_parts(2, Transform::Raw, node_raw, Map::default())
        };
        assert!(mk(vec![]).is_err(), "empty vector accepted");
        assert!(mk(vec![(1, 2), (0, 1)]).is_err(), "unsorted accepted");
        assert!(
            mk(vec![(0, 1), (0, 2)]).is_err(),
            "duplicate coord accepted"
        );
        assert!(mk(vec![(5, 1)]).is_err(), "out-of-range coord accepted");
        assert!(mk(vec![(0, 0)]).is_err(), "zero count accepted");
        assert!(mk(vec![(0, 1), (1, 2)]).is_ok());
    }

    #[test]
    fn partners_list() {
        let idx = sample_index(Transform::Raw);
        assert_eq!(idx.partners(NodeId(1)), &[2, 3]);
        assert_eq!(idx.partners(NodeId(2)), &[1]);
        assert_eq!(idx.partners(NodeId(9)), &[] as &[u32]);
        assert_eq!(idx.n_nodes(), 3);
        assert_eq!(idx.n_pairs(), 2);
    }

    #[test]
    fn restrict_remaps_coordinates() {
        let idx = sample_index(Transform::Raw);
        let sub = idx.restrict(&[1]);
        assert_eq!(sub.n_metagraphs(), 1);
        assert_eq!(sub.node_vec(NodeId(1)), &[(0, 2.0)]);
        // Node 2 only occurred in M0 → absent from the restriction.
        assert!(sub.node_vec(NodeId(2)).is_empty());
        assert_eq!(sub.partners(NodeId(1)), &[3]);
        assert!(sub.partners(NodeId(2)).is_empty());
    }

    #[test]
    fn restrict_identity() {
        let idx = sample_index(Transform::Raw);
        let same = idx.restrict(&[0, 1]);
        assert_eq!(same.n_metagraphs(), 2);
        assert_eq!(same.node_vec(NodeId(1)), idx.node_vec(NodeId(1)));
        assert_eq!(same.partners(NodeId(1)), idx.partners(NodeId(1)));
    }

    #[test]
    fn restrict_permutation_roundtrip() {
        // Restricting to a permutation of all coordinates and then
        // restricting back with the inverse permutation must recover the
        // original index exactly: every node/pair vector and every dot
        // product, for all three transforms.
        for transform in [Transform::Raw, Transform::Log1p, Transform::Binary] {
            let idx = sample_index(transform);
            let perm = [1usize, 0];
            let inverse = [1usize, 0];
            let permuted = idx.restrict(&perm);
            let back = permuted.restrict(&inverse);
            assert_eq!(back.n_metagraphs(), idx.n_metagraphs());
            assert_eq!(back.transform(), idx.transform());
            for x in 0..5u32 {
                assert_eq!(
                    back.node_vec(NodeId(x)),
                    idx.node_vec(NodeId(x)),
                    "{transform:?}"
                );
                assert_eq!(back.partners(NodeId(x)), idx.partners(NodeId(x)));
                for y in 0..5u32 {
                    assert_eq!(
                        back.pair_vec(NodeId(x), NodeId(y)),
                        idx.pair_vec(NodeId(x), NodeId(y))
                    );
                }
            }
            // Dot products against permuted weights agree with originals.
            let w = [0.25, 2.0];
            let w_perm = [w[perm[0]], w[perm[1]]];
            for x in 0..5u32 {
                assert_eq!(
                    idx.dot_node(NodeId(x), &w),
                    permuted.dot_node(NodeId(x), &w_perm),
                    "{transform:?} dot under permutation"
                );
            }
        }
    }

    #[test]
    fn restrict_coordinates_remap_to_keep_positions() {
        let idx = sample_index(Transform::Raw);
        // keep[j] = original coordinate; result coordinate j carries its
        // value. Node 1 has (0 → 3.0, 1 → 2.0) originally.
        let sub = idx.restrict(&[1, 0]);
        assert_eq!(sub.node_vec(NodeId(1)), &[(0, 2.0), (1, 3.0)]);
        assert_eq!(sub.pair_vec(NodeId(1), NodeId(2)), &[(1, 3.0)]);
        assert_eq!(sub.pair_vec(NodeId(1), NodeId(3)), &[(0, 2.0)]);
    }

    #[test]
    fn transform_variants_apply_pointwise() {
        // All three variants on the same counts.
        assert_eq!(Transform::Raw.apply(0), 0.0);
        assert_eq!(Transform::Raw.apply(7), 7.0);
        assert_eq!(Transform::Log1p.apply(0), 0.0);
        assert!((Transform::Log1p.apply(7) - 8.0f64.ln()).abs() < 1e-12);
        assert_eq!(Transform::Binary.apply(0), 0.0);
        assert_eq!(Transform::Binary.apply(7), 1.0);
        // Default is the paper's log-damped counts.
        assert_eq!(Transform::default(), Transform::Log1p);
        // And the built index reports the transform it used.
        for t in [Transform::Raw, Transform::Log1p, Transform::Binary] {
            assert_eq!(sample_index(t).transform(), t);
        }
    }

    #[test]
    fn iterators_cover_the_whole_index() {
        let idx = sample_index(Transform::Raw);
        let nodes: Vec<u32> = idx.iter_nodes().map(|(x, _)| x.0).collect();
        assert_eq!(nodes.len(), idx.n_nodes());
        for x in &nodes {
            assert!(!idx.node_vec(NodeId(*x)).is_empty());
        }
        let pairs: Vec<u64> = idx.iter_pairs().map(|(k, _)| k).collect();
        assert_eq!(pairs.len(), idx.n_pairs());
        let partner_nodes: usize = idx.iter_partners().count();
        assert_eq!(partner_nodes, 3); // nodes 1, 2, 3 all have partners
        for (x, list) in idx.iter_partners() {
            assert_eq!(list, idx.partners(x));
            assert!(list.windows(2).all(|w| w[0] < w[1]), "sorted + deduped");
        }
    }

    #[test]
    fn empty_index() {
        let idx = VectorIndex::from_counts(&[], Transform::Log1p);
        assert_eq!(idx.n_metagraphs(), 0);
        assert!(idx.node_vec(NodeId(0)).is_empty());
        assert_eq!(idx.n_nodes(), 0);
    }

    #[test]
    fn serde_roundtrip() {
        let idx = sample_index(Transform::Log1p);
        let json = serde_json::to_string(&idx).unwrap();
        let back: VectorIndex = serde_json::from_str(&json).unwrap();
        assert_eq!(back.n_metagraphs(), idx.n_metagraphs());
        assert_eq!(back.node_vec(NodeId(1)), idx.node_vec(NodeId(1)));
        assert_eq!(back.partners(NodeId(1)), idx.partners(NodeId(1)));
    }

    #[test]
    fn dot_helper() {
        assert_eq!(dot(&[(0, 2.0), (2, 3.0)], &[1.0, 9.0, 0.5]), 3.5);
        assert_eq!(dot(&[], &[1.0]), 0.0);
    }

    /// Merged-rebuild reference: the index after `apply_delta` must be
    /// indistinguishable from `from_counts` on the summed totals.
    fn assert_index_eq(a: &VectorIndex, b: &VectorIndex) {
        assert_eq!(a.n_metagraphs(), b.n_metagraphs());
        for x in 0..10u32 {
            assert_eq!(a.node_vec(NodeId(x)), b.node_vec(NodeId(x)), "m_{x}");
            assert_eq!(a.partners(NodeId(x)), b.partners(NodeId(x)));
            for y in 0..10u32 {
                assert_eq!(
                    a.pair_vec(NodeId(x), NodeId(y)),
                    b.pair_vec(NodeId(x), NodeId(y))
                );
            }
        }
        assert_eq!(a.n_nodes(), b.n_nodes());
        assert_eq!(a.n_pairs(), b.n_pairs());
    }

    #[test]
    fn apply_delta_matches_full_rebuild() {
        for transform in [Transform::Raw, Transform::Log1p, Transform::Binary] {
            // Base: the sample index. Delta: bumps an existing pair,
            // introduces a new pair (2,3) and a brand-new node 4.
            let c0 = counts(&[(1, 3), (2, 3)], &[((1, 2), 3)]);
            let c1 = counts(&[(1, 2), (3, 2)], &[((1, 3), 2)]);
            let d0 = counts(&[(1, 1), (2, 1)], &[((1, 2), 1)]);
            let d1 = counts(&[(2, 2), (3, 2), (4, 1)], &[((2, 3), 2), ((1, 4), 1)]);

            let mut idx = VectorIndex::from_counts(&[c0.clone(), c1.clone()], transform);
            let touch = idx.apply_delta(&IndexDelta::from_increments(&[d0.clone(), d1.clone()]));

            // The same merge production `ingest` uses, so the reference
            // rebuild can never drift from the real pipeline's semantics.
            let merge = |mut a: AnchorCounts, b: &AnchorCounts| {
                mgp_matching::merge_counts(&mut a, b);
                a
            };
            let full = VectorIndex::from_counts(&[merge(c0, &d0), merge(c1, &d1)], transform);
            assert_index_eq(&idx, &full);

            assert_eq!(touch.nodes, vec![1, 2, 3, 4], "{transform:?}");
            assert_eq!(
                touch.pairs,
                vec![
                    pack_pair(NodeId(1), NodeId(2)),
                    pack_pair(NodeId(1), NodeId(4)),
                    pack_pair(NodeId(2), NodeId(3)),
                ]
            );
            // New partners appeared in sorted order.
            assert_eq!(idx.partners(NodeId(2)), &[1, 3]);
            assert_eq!(idx.partners(NodeId(4)), &[1]);
        }
    }

    #[test]
    fn empty_delta_touches_nothing() {
        let mut idx = sample_index(Transform::Log1p);
        let before = idx.clone();
        let touch = idx.apply_delta(&IndexDelta::empty(2));
        assert!(touch.is_empty());
        assert!(IndexDelta::empty(2).is_empty());
        assert_index_eq(&idx, &before);
    }

    #[test]
    fn sequential_deltas_accumulate() {
        let mut idx = sample_index(Transform::Log1p);
        let d = IndexDelta::from_increments(&[
            counts(&[(1, 1)], &[]),
            counts(&[(1, 2)], &[((1, 2), 5)]),
        ]);
        idx.apply_delta(&d);
        idx.apply_delta(&d);
        let full = VectorIndex::from_counts(
            &[
                counts(&[(1, 5), (2, 3)], &[((1, 2), 3)]),
                counts(&[(1, 6), (3, 2)], &[((1, 3), 2), ((1, 2), 10)]),
            ],
            Transform::Log1p,
        );
        assert_index_eq(&idx, &full);
    }

    #[test]
    #[should_panic(expected = "coordinate count mismatch")]
    fn apply_delta_rejects_wrong_arity() {
        let mut idx = sample_index(Transform::Raw);
        idx.apply_delta(&IndexDelta::empty(5));
    }

    #[test]
    fn restrict_preserves_raw_counts_for_later_deltas() {
        // Restricting then applying a delta behaves like applying to a
        // from-scratch index over the kept coordinate.
        let idx = sample_index(Transform::Log1p);
        let mut sub = idx.restrict(&[1]);
        let touch = sub.apply_delta(&IndexDelta::from_increments(&[counts(&[(1, 3)], &[])]));
        assert_eq!(touch.nodes, vec![1]);
        let full = VectorIndex::from_counts(
            &[counts(&[(1, 5), (3, 2)], &[((1, 3), 2)])],
            Transform::Log1p,
        );
        assert_eq!(sub.node_vec(NodeId(1)), full.node_vec(NodeId(1)));
    }

    /// A pure-removal delta subtracting each coordinate layer once.
    fn removal_delta(layers: &[AnchorCounts]) -> IndexDelta {
        IndexDelta {
            counts: layers
                .iter()
                .map(|c| {
                    let mut d = CountDelta::default();
                    d.accumulate(c, -1);
                    d
                })
                .collect(),
        }
    }

    #[test]
    fn apply_delta_with_removals_matches_full_rebuild() {
        for transform in [Transform::Raw, Transform::Log1p, Transform::Binary] {
            // Base: sample index. Removals: drop one count off pair (1,2)
            // on coordinate 0 and kill pair (1,3) / node 3 entirely on
            // coordinate 1.
            let c0 = counts(&[(1, 3), (2, 3)], &[((1, 2), 3)]);
            let c1 = counts(&[(1, 2), (3, 2)], &[((1, 3), 2)]);
            let r0 = counts(&[(1, 1), (2, 1)], &[((1, 2), 1)]);
            let r1 = counts(&[(1, 2), (3, 2)], &[((1, 3), 2)]);
            let mut idx = VectorIndex::from_counts(&[c0, c1], transform);
            let touch = idx.apply_delta(&removal_delta(&[r0, r1]));

            let full = VectorIndex::from_counts(
                &[counts(&[(1, 2), (2, 2)], &[((1, 2), 2)]), counts(&[], &[])],
                transform,
            );
            assert_index_eq(&idx, &full);

            // Node 3 and pair (1,3) are gone, not lingering empty.
            assert!(idx.node_vec(NodeId(3)).is_empty(), "{transform:?}");
            assert!(idx.pair_vec(NodeId(1), NodeId(3)).is_empty());
            assert_eq!(idx.partners(NodeId(1)), &[2]);
            assert!(idx.partners(NodeId(3)).is_empty());
            assert_eq!(idx.n_nodes(), 2);
            assert_eq!(idx.n_pairs(), 1);
            // The touch still reports the vanished entries so the serving
            // layer can drop its own.
            assert_eq!(touch.nodes, vec![1, 2, 3]);
            assert!(touch.pairs.contains(&pack_pair(NodeId(1), NodeId(3))));
        }
    }

    #[test]
    fn churn_roundtrip_restores_index_exactly() {
        for transform in [Transform::Raw, Transform::Log1p, Transform::Binary] {
            let original = sample_index(transform);
            let mut idx = original.clone();
            // Remove pair (1,3) and its node contributions, add a new pair
            // (2,4) — then invert both.
            let gone = counts(&[(1, 2), (3, 2)], &[((1, 3), 2)]);
            let fresh = counts(&[(2, 1), (4, 1)], &[((2, 4), 1)]);
            let mut forward = IndexDelta::empty(2);
            forward.counts[1].accumulate(&gone, -1);
            forward.counts[0].accumulate(&fresh, 1);
            let mut backward = IndexDelta::empty(2);
            backward.counts[1].accumulate(&gone, 1);
            backward.counts[0].accumulate(&fresh, -1);

            idx.apply_delta(&forward);
            assert!(idx.node_vec(NodeId(3)).is_empty());
            assert_eq!(idx.partners(NodeId(4)), &[2]);
            idx.apply_delta(&backward);

            assert_index_eq(&idx, &original);
            // No leaked empties anywhere: every surviving vector and
            // partner list is non-empty.
            assert!(idx.iter_nodes().all(|(_, v)| !v.is_empty()));
            assert!(idx.iter_pairs().all(|(_, v)| !v.is_empty()));
            assert!(idx.iter_partners().all(|(_, l)| !l.is_empty()));
            assert_eq!(
                idx.iter_partners().count(),
                original.iter_partners().count()
            );
        }
    }

    /// Fused fan-out contract: applying a batch through each class's
    /// coordinate list equals applying the per-class `IndexDelta` the old
    /// path would have built.
    #[test]
    fn delta_batch_fans_out_identically_to_per_class_deltas() {
        for transform in [Transform::Raw, Transform::Log1p, Transform::Binary] {
            // Three "global patterns"; two classes restrict to different,
            // overlapping subsets of them.
            let c0 = counts(&[(1, 3), (2, 3)], &[((1, 2), 3)]);
            let c1 = counts(&[(1, 2), (3, 2)], &[((1, 3), 2)]);
            let c2 = counts(&[(2, 1), (4, 1)], &[((2, 4), 1)]);
            let full = VectorIndex::from_counts(&[c0, c1, c2], transform);
            let class_coords: [&[usize]; 2] = [&[0, 2], &[1, 2]];

            // Shared per-pattern changes: bump pattern 0, kill pattern 2's
            // pair entirely, leave pattern 1 untouched.
            let mut batch = IndexDeltaBatch::default();
            batch.insert(
                0,
                CountDelta::from(&counts(&[(1, 1), (2, 1)], &[((1, 2), 1)])),
            );
            let mut kill = CountDelta::default();
            kill.accumulate(&counts(&[(2, 1), (4, 1)], &[((2, 4), 1)]), -1);
            batch.insert(2, kill);
            batch.insert(1, CountDelta::default()); // empty → dropped
            assert_eq!(batch.len(), 2);
            assert!(batch.get(1).is_none());
            assert!(!batch.is_empty());

            for coords in class_coords {
                let mut fused = full.restrict(coords);
                let mut classic = fused.clone();
                let touch = batch.apply_to(&mut fused, coords);

                let per_class = IndexDelta {
                    counts: coords
                        .iter()
                        .map(|g| batch.get(*g).cloned().unwrap_or_default())
                        .collect(),
                };
                let classic_touch = classic.apply_delta(&per_class);
                assert_eq!(touch, classic_touch, "{transform:?} {coords:?}");
                assert_index_eq(&fused, &classic);
            }
        }
    }

    #[test]
    #[should_panic(expected = "coordinate list mismatch")]
    fn delta_batch_rejects_wrong_coords() {
        let mut idx = sample_index(Transform::Raw);
        IndexDeltaBatch::default().apply_to(&mut idx, &[0, 1, 2]);
    }

    #[test]
    #[should_panic(expected = "count underflow")]
    fn apply_delta_panics_on_underflow() {
        let mut idx = sample_index(Transform::Raw);
        // Node 1 has count 3 on coordinate 0; removing 5 is corrupt.
        let r = counts(&[(1, 5)], &[]);
        let mut d = IndexDelta::empty(2);
        d.counts[0].accumulate(&r, -1);
        idx.apply_delta(&d);
    }

    #[test]
    fn check_coord_flags_underflow_without_mutating() {
        let idx = sample_index(Transform::Raw);
        let before = idx.clone();

        // Node 1 has count 3 on coordinate 0; removing 5 underflows …
        let mut bad = CountDelta::default();
        bad.accumulate(&counts(&[(1, 5)], &[]), -1);
        let err = idx.check_coord(0, &bad).unwrap_err();
        assert_eq!((err.node, err.have, err.change), (Some(1), 3, -5));

        // … but the same removal on coordinate 1 (count 2 → checks
        // against a different raw entry) still underflows, while a
        // removal of 2 there is fine, as are pure increments anywhere.
        assert!(idx.check_coord(1, &bad).is_err());
        let mut ok = CountDelta::default();
        ok.accumulate(&counts(&[(1, 2)], &[((1, 3), 2)]), -1);
        assert!(idx.check_coord(1, &ok).is_ok());
        let grow = CountDelta::from(&counts(&[(1, 9)], &[((1, 2), 9)]));
        assert!(idx.check_coord(0, &grow).is_ok());

        // Probing never mutates the index.
        assert_index_eq(&idx, &before);
    }

    #[test]
    fn delta_batch_check_against_names_the_coordinate() {
        // Class restricted to global patterns [0, 1]: local coordinate 1
        // is global pattern 1, where node 1 holds count 2.
        let idx = sample_index(Transform::Raw);
        let mut batch = IndexDeltaBatch::default();
        let mut bad = CountDelta::default();
        bad.accumulate(&counts(&[(1, 4)], &[]), -1);
        batch.insert(1, bad);

        let err = batch.check_against(&idx, &[0, 1]).unwrap_err();
        assert_eq!(err.coordinate, 1);
        assert_eq!(err.underflow.node, Some(1));
        assert!(err.to_string().contains("coordinate 1"));

        // A restriction that skips pattern 1 never sees the bad delta.
        let narrow = idx.restrict(&[0]);
        assert!(batch.check_against(&narrow, &[0]).is_ok());
    }

    #[test]
    #[should_panic(expected = "coordinate list mismatch")]
    fn delta_batch_check_rejects_wrong_coords() {
        let idx = sample_index(Transform::Raw);
        let _ = IndexDeltaBatch::default().check_against(&idx, &[0]);
    }
}

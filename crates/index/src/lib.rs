//! # mgp-index — the metagraph vector index
//!
//! After matching, the offline phase *indexes* the instances: for every
//! anchor node `x` the vector `m_x` (Eq. 2) and for every co-occurring
//! anchor pair `{x, y}` the vector `m_xy` (Eq. 1), each with one coordinate
//! per metagraph. These vectors are all MGP needs at training and query
//! time — the instances themselves are discarded.
//!
//! The index stores the vectors *sparsely per node/pair* (most nodes occur
//! in few metagraphs) with counts already transformed (`log1p` by default,
//! per the remark under Eq. 2 that counts may be transformed, which tames
//! heavy-tailed instance counts). It also keeps, per anchor node, the list
//! of partners it shares at least one metagraph instance with — the online
//! phase ranks exactly these candidates, everything else has proximity 0.
//!
//! [`VectorIndex::restrict`] projects the index onto a subset of metagraphs
//! with remapped coordinates; dual-stage training uses this to train on the
//! seed set and on seed+candidate sets without re-matching anything.

#![warn(missing_docs)]

use mgp_graph::ids::pack_pair;
use mgp_graph::{FxHashMap, NodeId};
use mgp_matching::AnchorCounts;
use serde::{Deserialize, Serialize};

/// How raw instance counts become vector entries.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default, Serialize, Deserialize)]
pub enum Transform {
    /// Keep raw counts.
    Raw,
    /// `ln(1 + count)` — the default, robust to heavy-tailed counts.
    #[default]
    Log1p,
    /// Presence only (1 if the count is positive). Useful when hub-heavy
    /// patterns inflate counts without carrying more information.
    Binary,
}

impl Transform {
    /// Applies the transform to a raw count.
    #[inline]
    pub fn apply(self, count: u64) -> f64 {
        match self {
            Transform::Raw => count as f64,
            Transform::Log1p => (1.0 + count as f64).ln(),
            Transform::Binary => f64::from(count > 0),
        }
    }
}

/// A sparse vector over metagraph coordinates: `(metagraph index,
/// transformed count)`, sorted by index.
pub type SparseVec = Vec<(u32, f64)>;

/// The metagraph vector index (Eq. 1–2 materialised for all nodes/pairs).
#[derive(Debug, Clone, Default, Serialize, Deserialize)]
pub struct VectorIndex {
    n_metagraphs: usize,
    transform: Transform,
    node_vecs: FxHashMap<u32, SparseVec>,
    pair_vecs: FxHashMap<u64, SparseVec>,
    partners: FxHashMap<u32, Vec<u32>>,
}

impl VectorIndex {
    /// Builds the index from per-metagraph anchor counts (coordinate `i`
    /// comes from `counts[i]`).
    pub fn from_counts(counts: &[AnchorCounts], transform: Transform) -> Self {
        let mut node_vecs: FxHashMap<u32, SparseVec> = FxHashMap::default();
        let mut pair_vecs: FxHashMap<u64, SparseVec> = FxHashMap::default();
        let mut partners: FxHashMap<u32, Vec<u32>> = FxHashMap::default();

        for (i, c) in counts.iter().enumerate() {
            let i = i as u32;
            for (&x, &cnt) in &c.per_node {
                node_vecs
                    .entry(x)
                    .or_default()
                    .push((i, transform.apply(cnt)));
            }
            for (&key, &cnt) in &c.per_pair {
                pair_vecs
                    .entry(key)
                    .or_default()
                    .push((i, transform.apply(cnt)));
            }
        }
        for v in node_vecs.values_mut() {
            v.sort_unstable_by_key(|&(i, _)| i);
        }
        for (key, v) in pair_vecs.iter_mut() {
            v.sort_unstable_by_key(|&(i, _)| i);
            let (x, y) = mgp_graph::ids::unpack_pair(*key);
            partners.entry(x.0).or_default().push(y.0);
            partners.entry(y.0).or_default().push(x.0);
        }
        for v in partners.values_mut() {
            v.sort_unstable();
            v.dedup();
        }
        VectorIndex {
            n_metagraphs: counts.len(),
            transform,
            node_vecs,
            pair_vecs,
            partners,
        }
    }

    /// Number of metagraph coordinates `|M|`.
    pub fn n_metagraphs(&self) -> usize {
        self.n_metagraphs
    }

    /// The transform the index was built with.
    pub fn transform(&self) -> Transform {
        self.transform
    }

    /// Sparse `m_x` of a node (empty slice if absent from all metagraphs).
    pub fn node_vec(&self, x: NodeId) -> &[(u32, f64)] {
        self.node_vecs.get(&x.0).map(Vec::as_slice).unwrap_or(&[])
    }

    /// Sparse `m_xy` of an unordered pair.
    pub fn pair_vec(&self, x: NodeId, y: NodeId) -> &[(u32, f64)] {
        self.pair_vecs
            .get(&pack_pair(x, y))
            .map(Vec::as_slice)
            .unwrap_or(&[])
    }

    /// The anchors sharing at least one metagraph instance with `x` —
    /// the only nodes with non-zero MGP proximity to `x`.
    pub fn partners(&self, x: NodeId) -> &[u32] {
        self.partners.get(&x.0).map(Vec::as_slice).unwrap_or(&[])
    }

    /// Number of distinct anchor nodes appearing in the index.
    pub fn n_nodes(&self) -> usize {
        self.node_vecs.len()
    }

    /// Number of distinct anchor pairs appearing in the index.
    pub fn n_pairs(&self) -> usize {
        self.pair_vecs.len()
    }

    /// `m_x · w`.
    pub fn dot_node(&self, x: NodeId, w: &[f64]) -> f64 {
        dot(self.node_vec(x), w)
    }

    /// `m_xy · w`.
    pub fn dot_pair(&self, x: NodeId, y: NodeId, w: &[f64]) -> f64 {
        dot(self.pair_vec(x, y), w)
    }

    /// Iterates over every `(node, m_x)` entry, in arbitrary order.
    ///
    /// This is the bulk-export path used by `mgp-online` to precompute
    /// `m_x · w` tables at class-registration time.
    pub fn iter_nodes(&self) -> impl Iterator<Item = (NodeId, &[(u32, f64)])> {
        self.node_vecs
            .iter()
            .map(|(&x, v)| (NodeId(x), v.as_slice()))
    }

    /// Iterates over every `(packed pair, m_xy)` entry, in arbitrary order
    /// (unpack with [`mgp_graph::ids::unpack_pair`]).
    pub fn iter_pairs(&self) -> impl Iterator<Item = (u64, &[(u32, f64)])> {
        self.pair_vecs.iter().map(|(&k, v)| (k, v.as_slice()))
    }

    /// Iterates over every `(node, partner list)` entry, in arbitrary
    /// order; each list is ascending and deduplicated.
    pub fn iter_partners(&self) -> impl Iterator<Item = (NodeId, &[u32])> {
        self.partners
            .iter()
            .map(|(&x, v)| (NodeId(x), v.as_slice()))
    }

    /// Projects the index onto the metagraph subset `keep` (indices into
    /// the original coordinates); coordinate `j` of the result corresponds
    /// to `keep[j]`.
    pub fn restrict(&self, keep: &[usize]) -> VectorIndex {
        let mut remap: FxHashMap<u32, u32> = FxHashMap::default();
        for (j, &i) in keep.iter().enumerate() {
            remap.insert(i as u32, j as u32);
        }
        let project = |v: &SparseVec| -> SparseVec {
            let mut out: SparseVec = v
                .iter()
                .filter_map(|&(i, c)| remap.get(&i).map(|&j| (j, c)))
                .collect();
            out.sort_unstable_by_key(|&(j, _)| j);
            out
        };
        let node_vecs: FxHashMap<u32, SparseVec> = self
            .node_vecs
            .iter()
            .map(|(&x, v)| (x, project(v)))
            .filter(|(_, v)| !v.is_empty())
            .collect();
        let pair_vecs: FxHashMap<u64, SparseVec> = self
            .pair_vecs
            .iter()
            .map(|(&k, v)| (k, project(v)))
            .filter(|(_, v)| !v.is_empty())
            .collect();
        let mut partners: FxHashMap<u32, Vec<u32>> = FxHashMap::default();
        for &key in pair_vecs.keys() {
            let (x, y) = mgp_graph::ids::unpack_pair(key);
            partners.entry(x.0).or_default().push(y.0);
            partners.entry(y.0).or_default().push(x.0);
        }
        for v in partners.values_mut() {
            v.sort_unstable();
            v.dedup();
        }
        VectorIndex {
            n_metagraphs: keep.len(),
            transform: self.transform,
            node_vecs,
            pair_vecs,
            partners,
        }
    }
}

/// Sparse · dense dot product.
#[inline]
pub fn dot(sparse: &[(u32, f64)], w: &[f64]) -> f64 {
    sparse.iter().map(|&(i, c)| c * w[i as usize]).sum()
}

#[cfg(test)]
mod tests {
    use super::*;
    use mgp_graph::FxHashMap as Map;

    fn counts(node: &[(u32, u64)], pairs: &[((u32, u32), u64)]) -> AnchorCounts {
        let mut per_node: Map<u32, u64> = Map::default();
        for &(x, c) in node {
            per_node.insert(x, c);
        }
        let mut per_pair: Map<u64, u64> = Map::default();
        for &((x, y), c) in pairs {
            per_pair.insert(pack_pair(NodeId(x), NodeId(y)), c);
        }
        AnchorCounts {
            per_node,
            per_pair,
            n_instances: 0,
        }
    }

    fn sample_index(transform: Transform) -> VectorIndex {
        // M0: pairs (1,2) count 3; M1: pairs (1,3) count 2.
        let c0 = counts(&[(1, 3), (2, 3)], &[((1, 2), 3)]);
        let c1 = counts(&[(1, 2), (3, 2)], &[((1, 3), 2)]);
        VectorIndex::from_counts(&[c0, c1], transform)
    }

    #[test]
    fn vectors_and_dots_raw() {
        let idx = sample_index(Transform::Raw);
        assert_eq!(idx.n_metagraphs(), 2);
        assert_eq!(idx.node_vec(NodeId(1)), &[(0, 3.0), (1, 2.0)]);
        assert_eq!(idx.pair_vec(NodeId(2), NodeId(1)), &[(0, 3.0)]);
        let w = vec![0.5, 1.0];
        assert_eq!(idx.dot_node(NodeId(1), &w), 3.5);
        assert_eq!(idx.dot_pair(NodeId(1), NodeId(3), &w), 2.0);
        assert_eq!(idx.dot_pair(NodeId(2), NodeId(3), &w), 0.0);
    }

    #[test]
    fn log_transform_applied() {
        let idx = sample_index(Transform::Log1p);
        let v = idx.node_vec(NodeId(1));
        assert!((v[0].1 - 4.0f64.ln()).abs() < 1e-12);
        assert!((v[1].1 - 3.0f64.ln()).abs() < 1e-12);
    }

    #[test]
    fn binary_transform_is_presence() {
        let idx = sample_index(Transform::Binary);
        assert_eq!(idx.node_vec(NodeId(1)), &[(0, 1.0), (1, 1.0)]);
        assert_eq!(idx.pair_vec(NodeId(1), NodeId(2)), &[(0, 1.0)]);
        assert_eq!(Transform::Binary.apply(0), 0.0);
        assert_eq!(Transform::Binary.apply(100), 1.0);
    }

    #[test]
    fn partners_list() {
        let idx = sample_index(Transform::Raw);
        assert_eq!(idx.partners(NodeId(1)), &[2, 3]);
        assert_eq!(idx.partners(NodeId(2)), &[1]);
        assert_eq!(idx.partners(NodeId(9)), &[] as &[u32]);
        assert_eq!(idx.n_nodes(), 3);
        assert_eq!(idx.n_pairs(), 2);
    }

    #[test]
    fn restrict_remaps_coordinates() {
        let idx = sample_index(Transform::Raw);
        let sub = idx.restrict(&[1]);
        assert_eq!(sub.n_metagraphs(), 1);
        assert_eq!(sub.node_vec(NodeId(1)), &[(0, 2.0)]);
        // Node 2 only occurred in M0 → absent from the restriction.
        assert!(sub.node_vec(NodeId(2)).is_empty());
        assert_eq!(sub.partners(NodeId(1)), &[3]);
        assert!(sub.partners(NodeId(2)).is_empty());
    }

    #[test]
    fn restrict_identity() {
        let idx = sample_index(Transform::Raw);
        let same = idx.restrict(&[0, 1]);
        assert_eq!(same.n_metagraphs(), 2);
        assert_eq!(same.node_vec(NodeId(1)), idx.node_vec(NodeId(1)));
        assert_eq!(same.partners(NodeId(1)), idx.partners(NodeId(1)));
    }

    #[test]
    fn restrict_permutation_roundtrip() {
        // Restricting to a permutation of all coordinates and then
        // restricting back with the inverse permutation must recover the
        // original index exactly: every node/pair vector and every dot
        // product, for all three transforms.
        for transform in [Transform::Raw, Transform::Log1p, Transform::Binary] {
            let idx = sample_index(transform);
            let perm = [1usize, 0];
            let inverse = [1usize, 0];
            let permuted = idx.restrict(&perm);
            let back = permuted.restrict(&inverse);
            assert_eq!(back.n_metagraphs(), idx.n_metagraphs());
            assert_eq!(back.transform(), idx.transform());
            for x in 0..5u32 {
                assert_eq!(
                    back.node_vec(NodeId(x)),
                    idx.node_vec(NodeId(x)),
                    "{transform:?}"
                );
                assert_eq!(back.partners(NodeId(x)), idx.partners(NodeId(x)));
                for y in 0..5u32 {
                    assert_eq!(
                        back.pair_vec(NodeId(x), NodeId(y)),
                        idx.pair_vec(NodeId(x), NodeId(y))
                    );
                }
            }
            // Dot products against permuted weights agree with originals.
            let w = [0.25, 2.0];
            let w_perm = [w[perm[0]], w[perm[1]]];
            for x in 0..5u32 {
                assert_eq!(
                    idx.dot_node(NodeId(x), &w),
                    permuted.dot_node(NodeId(x), &w_perm),
                    "{transform:?} dot under permutation"
                );
            }
        }
    }

    #[test]
    fn restrict_coordinates_remap_to_keep_positions() {
        let idx = sample_index(Transform::Raw);
        // keep[j] = original coordinate; result coordinate j carries its
        // value. Node 1 has (0 → 3.0, 1 → 2.0) originally.
        let sub = idx.restrict(&[1, 0]);
        assert_eq!(sub.node_vec(NodeId(1)), &[(0, 2.0), (1, 3.0)]);
        assert_eq!(sub.pair_vec(NodeId(1), NodeId(2)), &[(1, 3.0)]);
        assert_eq!(sub.pair_vec(NodeId(1), NodeId(3)), &[(0, 2.0)]);
    }

    #[test]
    fn transform_variants_apply_pointwise() {
        // All three variants on the same counts.
        assert_eq!(Transform::Raw.apply(0), 0.0);
        assert_eq!(Transform::Raw.apply(7), 7.0);
        assert_eq!(Transform::Log1p.apply(0), 0.0);
        assert!((Transform::Log1p.apply(7) - 8.0f64.ln()).abs() < 1e-12);
        assert_eq!(Transform::Binary.apply(0), 0.0);
        assert_eq!(Transform::Binary.apply(7), 1.0);
        // Default is the paper's log-damped counts.
        assert_eq!(Transform::default(), Transform::Log1p);
        // And the built index reports the transform it used.
        for t in [Transform::Raw, Transform::Log1p, Transform::Binary] {
            assert_eq!(sample_index(t).transform(), t);
        }
    }

    #[test]
    fn iterators_cover_the_whole_index() {
        let idx = sample_index(Transform::Raw);
        let nodes: Vec<u32> = idx.iter_nodes().map(|(x, _)| x.0).collect();
        assert_eq!(nodes.len(), idx.n_nodes());
        for x in &nodes {
            assert!(!idx.node_vec(NodeId(*x)).is_empty());
        }
        let pairs: Vec<u64> = idx.iter_pairs().map(|(k, _)| k).collect();
        assert_eq!(pairs.len(), idx.n_pairs());
        let partner_nodes: usize = idx.iter_partners().count();
        assert_eq!(partner_nodes, 3); // nodes 1, 2, 3 all have partners
        for (x, list) in idx.iter_partners() {
            assert_eq!(list, idx.partners(x));
            assert!(list.windows(2).all(|w| w[0] < w[1]), "sorted + deduped");
        }
    }

    #[test]
    fn empty_index() {
        let idx = VectorIndex::from_counts(&[], Transform::Log1p);
        assert_eq!(idx.n_metagraphs(), 0);
        assert!(idx.node_vec(NodeId(0)).is_empty());
        assert_eq!(idx.n_nodes(), 0);
    }

    #[test]
    fn serde_roundtrip() {
        let idx = sample_index(Transform::Log1p);
        let json = serde_json::to_string(&idx).unwrap();
        let back: VectorIndex = serde_json::from_str(&json).unwrap();
        assert_eq!(back.n_metagraphs(), idx.n_metagraphs());
        assert_eq!(back.node_vec(NodeId(1)), idx.node_vec(NodeId(1)));
        assert_eq!(back.partners(NodeId(1)), idx.partners(NodeId(1)));
    }

    #[test]
    fn dot_helper() {
        assert_eq!(dot(&[(0, 2.0), (2, 3.0)], &[1.0, 9.0, 0.5]), 3.5);
        assert_eq!(dot(&[], &[1.0]), 0.0);
    }
}

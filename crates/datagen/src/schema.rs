//! Schema-driven synthetic heterogeneous graph generation.
//!
//! The LinkedIn-/Facebook-like generators are hand-tuned reproductions of
//! the paper's datasets. This module generalises the recipe so new domains
//! (citations, e-commerce, …) can be generated declaratively: describe the
//! attribute types, how values cluster into *communities*, and which
//! attribute combinations define each semantic class; the generator wires
//! the graph and derives rule-based ground truth, the same way the paper
//! built its Facebook labels.

use crate::labels::{ClassId, Dataset, PairLabels};
use mgp_graph::{GraphBuilder, NodeId, TypeId};
use rand::{Rng, SeedableRng};
use rand_chacha::ChaCha8Rng;
use serde::{Deserialize, Serialize};

/// One attribute type of the schema.
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct AttributeSpec {
    /// Type name (e.g. `"school"`).
    pub name: String,
    /// Number of distinct values.
    pub n_values: usize,
    /// Probability an anchor links to at least one value of this type.
    pub coverage: f64,
    /// Probability of a second, independently drawn value.
    pub multi: f64,
    /// If set, values are drawn from the anchor's community id modulo
    /// `n_values` (community-correlated) with this probability, uniformly
    /// otherwise.
    pub community_bias: f64,
}

impl AttributeSpec {
    /// A fully covered, single-valued, community-tied attribute.
    pub fn core(name: &str, n_values: usize, bias: f64) -> Self {
        AttributeSpec {
            name: name.to_owned(),
            n_values,
            coverage: 1.0,
            multi: 0.0,
            community_bias: bias,
        }
    }

    /// An optional, uncorrelated distractor attribute.
    pub fn noise(name: &str, n_values: usize, coverage: f64) -> Self {
        AttributeSpec {
            name: name.to_owned(),
            n_values,
            coverage,
            multi: 0.1,
            community_bias: 0.0,
        }
    }
}

/// A semantic class defined as a conjunction of shared attributes.
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct ClassRule {
    /// Class name (e.g. `"classmate"`).
    pub name: String,
    /// Attribute type names that must *all* be shared by a labelled pair.
    pub require_shared: Vec<String>,
    /// Probability a rule-satisfying pair is actually labelled.
    pub recall: f64,
}

/// The full schema.
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct Schema {
    /// Dataset display name.
    pub name: String,
    /// Anchor type name (e.g. `"user"`).
    pub anchor_name: String,
    /// Number of anchor nodes.
    pub n_anchors: usize,
    /// Number of planted communities anchors are split into.
    pub n_communities: usize,
    /// Attribute types.
    pub attributes: Vec<AttributeSpec>,
    /// Semantic classes (≤ 8).
    pub classes: Vec<ClassRule>,
    /// Fraction of labelled pairs re-labelled with a random class.
    pub label_noise: f64,
    /// RNG seed.
    pub seed: u64,
}

/// Generates a dataset from a schema.
///
/// # Panics
/// Panics if a class rule references an unknown attribute name or there
/// are more than 8 classes.
pub fn generate_schema(schema: &Schema) -> Dataset {
    assert!(schema.classes.len() <= 8, "at most 8 classes");
    let mut rng = ChaCha8Rng::seed_from_u64(schema.seed);
    let mut b = GraphBuilder::new();
    let anchor_t = b.add_type(&schema.anchor_name);

    // Attribute value pools.
    let mut pools: Vec<(TypeId, Vec<NodeId>)> = Vec::with_capacity(schema.attributes.len());
    for spec in &schema.attributes {
        let t = b.add_type(&spec.name);
        let values = (0..spec.n_values)
            .map(|i| b.add_node(t, format!("{}{}", spec.name, i)))
            .collect();
        pools.push((t, values));
    }

    // Anchors with community assignment and attribute edges.
    let anchors: Vec<NodeId> = (0..schema.n_anchors)
        .map(|i| b.add_node(anchor_t, format!("{}{}", schema.anchor_name, i)))
        .collect();
    for &a in &anchors {
        let community = rng.random_range(0..schema.n_communities.max(1));
        for (spec, (_, values)) in schema.attributes.iter().zip(&pools) {
            if !rng.random_bool(spec.coverage) {
                continue;
            }
            let pick = |rng: &mut ChaCha8Rng| {
                if rng.random_bool(spec.community_bias) {
                    values[community % values.len()]
                } else {
                    values[rng.random_range(0..values.len())]
                }
            };
            let v = pick(&mut rng);
            b.add_edge(a, v).expect("valid edge");
            if rng.random_bool(spec.multi) {
                let v2 = pick(&mut rng);
                if v2 != v {
                    b.add_edge(a, v2).expect("valid edge");
                }
            }
        }
    }
    let graph = b.build();

    // Ground truth: group by the first required attribute, verify the rest.
    let mut labels = PairLabels::new();
    let type_of = |name: &str| -> TypeId {
        graph
            .types()
            .id(name)
            .unwrap_or_else(|| panic!("class rule references unknown attribute {name:?}"))
    };
    for (ci, rule) in schema.classes.iter().enumerate() {
        let class = ClassId(ci as u8);
        let required: Vec<TypeId> = rule.require_shared.iter().map(|n| type_of(n)).collect();
        let Some((&first, rest)) = required.split_first() else {
            continue;
        };
        let share = |x: NodeId, y: NodeId, t: TypeId| {
            graph
                .neighbors_of_type(x, t)
                .iter()
                .any(|v| graph.neighbors_of_type(y, t).contains(v))
        };
        for &value in graph.nodes_of_type(first) {
            let members = graph.neighbors_of_type(value, anchor_t);
            for (ai, &x) in members.iter().enumerate() {
                for &y in &members[ai + 1..] {
                    if rest.iter().all(|&t| share(x, y, t)) && rng.random_bool(rule.recall) {
                        labels.insert(x, y, class);
                    }
                }
            }
        }
    }

    // Label noise.
    let n_noise = (labels.n_pairs() as f64 * schema.label_noise) as usize;
    for _ in 0..n_noise {
        let x = anchors[rng.random_range(0..anchors.len())];
        let y = anchors[rng.random_range(0..anchors.len())];
        let class = ClassId(rng.random_range(0..schema.classes.len().max(1)) as u8);
        labels.insert(x, y, class);
    }

    Dataset {
        name: schema.name.clone(),
        graph,
        labels,
        class_names: schema.classes.iter().map(|c| c.name.clone()).collect(),
        anchor_type: anchor_t,
    }
}

/// A ready-made citation schema (papers / authors / venues / keywords),
/// the paper's second motivating scenario.
pub fn citation_schema(n_papers: usize, seed: u64) -> Schema {
    Schema {
        name: "Citations".to_owned(),
        anchor_name: "paper".to_owned(),
        n_anchors: n_papers,
        n_communities: (n_papers / 12).max(2),
        attributes: vec![
            AttributeSpec::core("venue", (n_papers / 25).max(2), 0.8),
            AttributeSpec::core("keyword", (n_papers / 5).max(4), 0.85),
            AttributeSpec {
                name: "author".to_owned(),
                n_values: (n_papers / 4).max(4),
                coverage: 1.0,
                multi: 0.8,
                community_bias: 0.9,
            },
        ],
        classes: vec![
            ClassRule {
                name: "same-problem".to_owned(),
                require_shared: vec!["keyword".to_owned(), "venue".to_owned()],
                recall: 0.9,
            },
            ClassRule {
                name: "same-community".to_owned(),
                require_shared: vec!["author".to_owned()],
                recall: 0.85,
            },
        ],
        label_noise: 0.05,
        seed,
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn tiny_schema() -> Schema {
        Schema {
            name: "Tiny".to_owned(),
            anchor_name: "user".to_owned(),
            n_anchors: 60,
            n_communities: 6,
            attributes: vec![
                AttributeSpec::core("group", 6, 0.9),
                AttributeSpec::core("city", 5, 0.7),
                AttributeSpec::noise("gadget", 10, 0.5),
            ],
            classes: vec![ClassRule {
                name: "member".to_owned(),
                require_shared: vec!["group".to_owned(), "city".to_owned()],
                recall: 0.9,
            }],
            label_noise: 0.05,
            seed: 3,
        }
    }

    #[test]
    fn generates_consistent_dataset() {
        let d = generate_schema(&tiny_schema());
        assert_eq!(d.graph.n_types(), 4);
        assert_eq!(d.graph.n_nodes_of_type(d.anchor_type), 60);
        assert!(d.labels.n_pairs() > 0);
        assert_eq!(d.class_names, vec!["member"]);
        // Labelled pairs mostly satisfy the rule.
        let g = &d.graph;
        let group_t = g.types().id("group").unwrap();
        let city_t = g.types().id("city").unwrap();
        let pairs = d.labels.pairs_of_class(ClassId(0));
        let ok = pairs
            .iter()
            .filter(|&&(x, y)| {
                let share = |t| {
                    g.neighbors_of_type(x, t)
                        .iter()
                        .any(|v| g.neighbors_of_type(y, t).contains(v))
                };
                share(group_t) && share(city_t)
            })
            .count();
        assert!(ok * 10 >= pairs.len() * 8, "{ok}/{}", pairs.len());
    }

    #[test]
    fn deterministic() {
        let a = generate_schema(&tiny_schema());
        let b = generate_schema(&tiny_schema());
        assert_eq!(a.graph.n_edges(), b.graph.n_edges());
        assert_eq!(a.labels.n_pairs(), b.labels.n_pairs());
    }

    #[test]
    fn citation_preset_works() {
        let d = generate_schema(&citation_schema(100, 5));
        assert_eq!(d.class_names.len(), 2);
        assert_eq!(
            d.graph.types().name(d.anchor_type),
            Some("paper")
        );
        for class in d.classes() {
            assert!(
                d.labels.queries_of_class(class).len() >= 10,
                "class {class:?} underpopulated"
            );
        }
    }

    #[test]
    #[should_panic(expected = "unknown attribute")]
    fn bad_rule_panics() {
        let mut s = tiny_schema();
        s.classes[0].require_shared = vec!["nonexistent".to_owned()];
        generate_schema(&s);
    }

    #[test]
    fn schema_serde_roundtrip() {
        let s = tiny_schema();
        let json = serde_json::to_string(&s).unwrap();
        let back: Schema = serde_json::from_str(&json).unwrap();
        assert_eq!(back.name, s.name);
        assert_eq!(back.attributes.len(), s.attributes.len());
    }
}

//! Facebook-like synthetic graph generator (Sect. V-A shape).
//!
//! Ten object types (`user` plus nine attribute types named in the paper)
//! and the paper's *exact* ground-truth rules:
//!
//! * **family** — same `surname` ∧ (same `location` ∨ same `hometown`),
//! * **classmate** — same `school` ∧ (same `degree` ∨ same `major`),
//! * 5 % of labelled pairs get a random class label instead (noise).
//!
//! The generator plants family groups (shared surname, usually shared
//! location/hometown) and school cohorts (shared school with correlated
//! degree/major), then derives labels from the *generated attributes* by
//! the rules — exactly the paper's protocol, which also derived Facebook
//! ground truth by rules over attributes. Work attributes
//! (`employer`, `work-location`, `work-project`) are assigned independently
//! and act as distractors: they generate plenty of metagraphs that are
//! irrelevant to both classes, reproducing the long-tailed weight structure
//! of Fig. 4.

use crate::labels::{ClassId, Dataset, PairLabels};
use mgp_graph::{GraphBuilder, NodeId};
use rand::{Rng, SeedableRng};
use rand_chacha::ChaCha8Rng;
use serde::{Deserialize, Serialize};

/// The *family* class of the Facebook-like dataset.
pub const FAMILY: ClassId = ClassId(0);
/// The *classmate* class of the Facebook-like dataset.
pub const CLASSMATE: ClassId = ClassId(1);

/// Configuration for [`generate_facebook`].
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct FacebookConfig {
    /// Number of user nodes.
    pub n_users: usize,
    /// Family group size range (inclusive).
    pub family_size: (usize, usize),
    /// Attribute pool sizes.
    pub n_surnames: usize,
    /// Number of location values.
    pub n_locations: usize,
    /// Number of hometown values.
    pub n_hometowns: usize,
    /// Number of school values.
    pub n_schools: usize,
    /// Number of degree values.
    pub n_degrees: usize,
    /// Number of major values.
    pub n_majors: usize,
    /// Number of employer values.
    pub n_employers: usize,
    /// Number of work-location values.
    pub n_work_locations: usize,
    /// Number of work-project values.
    pub n_work_projects: usize,
    /// Probability a family shares location (and separately hometown).
    pub family_cohesion: f64,
    /// Probability classmates-cohort members share degree / major.
    pub cohort_cohesion: f64,
    /// Fraction of labelled pairs whose class is randomised (paper: 0.05).
    pub label_noise: f64,
    /// RNG seed.
    pub seed: u64,
}

impl Default for FacebookConfig {
    /// A CI-friendly scale (~1 300 nodes) preserving Table II's shape.
    fn default() -> Self {
        FacebookConfig {
            n_users: 900,
            family_size: (2, 4),
            n_surnames: 220,
            n_locations: 60,
            n_hometowns: 60,
            n_schools: 40,
            n_degrees: 4,
            n_majors: 20,
            n_employers: 80,
            n_work_locations: 30,
            n_work_projects: 60,
            family_cohesion: 0.8,
            cohort_cohesion: 0.6,
            label_noise: 0.05,
            seed: 7,
        }
    }
}

impl FacebookConfig {
    /// Scaled to the magnitudes of the paper's Table II (≈ 5 000 nodes).
    pub fn paper_scale() -> Self {
        FacebookConfig {
            n_users: 3600,
            n_surnames: 800,
            n_locations: 150,
            n_hometowns: 150,
            n_schools: 120,
            n_degrees: 5,
            n_majors: 40,
            n_employers: 200,
            n_work_locations: 60,
            n_work_projects: 160,
            ..Self::default()
        }
    }

    /// A tiny scale for unit tests (~150 nodes).
    pub fn tiny(seed: u64) -> Self {
        FacebookConfig {
            n_users: 90,
            n_surnames: 25,
            n_locations: 8,
            n_hometowns: 8,
            n_schools: 6,
            n_degrees: 3,
            n_majors: 5,
            n_employers: 10,
            n_work_locations: 5,
            n_work_projects: 8,
            seed,
            ..Self::default()
        }
    }
}

/// Generates the Facebook-like dataset.
pub fn generate_facebook(cfg: &FacebookConfig) -> Dataset {
    let mut rng = ChaCha8Rng::seed_from_u64(cfg.seed);
    let mut b = GraphBuilder::new();

    let user_t = b.add_type("user");
    let surname_t = b.add_type("surname");
    let location_t = b.add_type("location");
    let hometown_t = b.add_type("hometown");
    let school_t = b.add_type("school");
    let degree_t = b.add_type("degree");
    let major_t = b.add_type("major");
    let employer_t = b.add_type("employer");
    let work_location_t = b.add_type("work-location");
    let work_project_t = b.add_type("work-project");

    // Attribute value nodes.
    let pool = |b: &mut GraphBuilder, t, prefix: &str, n: usize| -> Vec<NodeId> {
        (0..n)
            .map(|i| b.add_node(t, format!("{prefix}{i}")))
            .collect()
    };
    let surnames = pool(&mut b, surname_t, "surname", cfg.n_surnames);
    let locations = pool(&mut b, location_t, "loc", cfg.n_locations);
    let hometowns = pool(&mut b, hometown_t, "home", cfg.n_hometowns);
    let schools = pool(&mut b, school_t, "school", cfg.n_schools);
    let degrees = pool(&mut b, degree_t, "degree", cfg.n_degrees);
    let majors = pool(&mut b, major_t, "major", cfg.n_majors);
    let employers = pool(&mut b, employer_t, "employer", cfg.n_employers);
    let work_locations = pool(&mut b, work_location_t, "wloc", cfg.n_work_locations);
    let work_projects = pool(&mut b, work_project_t, "wproj", cfg.n_work_projects);

    let users: Vec<NodeId> = (0..cfg.n_users)
        .map(|i| b.add_node(user_t, format!("user{i}")))
        .collect();

    // --- Families: consecutive users grouped, sharing surname and (mostly)
    // location/hometown.
    let mut i = 0;
    while i < cfg.n_users {
        let size = rng
            .random_range(cfg.family_size.0..=cfg.family_size.1)
            .min(cfg.n_users - i);
        let surname = surnames[rng.random_range(0..surnames.len())];
        let family_loc = locations[rng.random_range(0..locations.len())];
        let family_home = hometowns[rng.random_range(0..hometowns.len())];
        for &u in &users[i..i + size] {
            b.add_edge(u, surname).unwrap();
            let loc = if rng.random_bool(cfg.family_cohesion) {
                family_loc
            } else {
                locations[rng.random_range(0..locations.len())]
            };
            b.add_edge(u, loc).unwrap();
            let home = if rng.random_bool(cfg.family_cohesion) {
                family_home
            } else {
                hometowns[rng.random_range(0..hometowns.len())]
            };
            b.add_edge(u, home).unwrap();
        }
        i += size;
    }

    // --- School cohorts: each user gets a school; cohort members share
    // degree/major with `cohort_cohesion`, else random.
    for &u in &users {
        let school_idx = rng.random_range(0..schools.len());
        b.add_edge(u, schools[school_idx]).unwrap();
        // Cohort-characteristic degree/major derive deterministically from
        // the school so cohorts are coherent.
        let cohort_degree = degrees[school_idx % degrees.len()];
        let cohort_major = majors[school_idx % majors.len()];
        let degree = if rng.random_bool(cfg.cohort_cohesion) {
            cohort_degree
        } else {
            degrees[rng.random_range(0..degrees.len())]
        };
        let major = if rng.random_bool(cfg.cohort_cohesion) {
            cohort_major
        } else {
            majors[rng.random_range(0..majors.len())]
        };
        b.add_edge(u, degree).unwrap();
        b.add_edge(u, major).unwrap();
        // Some users attended a second school (pure noise for the rules,
        // which still apply to it).
        if rng.random_bool(0.15) {
            b.add_edge(u, schools[rng.random_range(0..schools.len())])
                .unwrap();
        }
    }

    // --- Work attributes: independent distractors.
    for &u in &users {
        if rng.random_bool(0.7) {
            b.add_edge(u, employers[rng.random_range(0..employers.len())])
                .unwrap();
        }
        if rng.random_bool(0.4) {
            b.add_edge(u, work_locations[rng.random_range(0..work_locations.len())])
                .unwrap();
        }
        if rng.random_bool(0.4) {
            b.add_edge(u, work_projects[rng.random_range(0..work_projects.len())])
                .unwrap();
        }
        if rng.random_bool(0.2) {
            b.add_edge(u, employers[rng.random_range(0..employers.len())])
                .unwrap();
        }
    }

    let graph = b.build();

    // --- Ground truth by the paper's rules, via attribute grouping.
    let mut labels = PairLabels::new();
    let user_ids = graph.nodes_of_type(user_t);

    // family: same surname ∧ (same location ∨ same hometown).
    for &s in &surnames {
        let members = graph.neighbors_of_type(s, user_t);
        for (ai, &x) in members.iter().enumerate() {
            for &y in &members[ai + 1..] {
                let share = |t| {
                    graph
                        .neighbors_of_type(x, t)
                        .iter()
                        .any(|v| graph.neighbors_of_type(y, t).contains(v))
                };
                if share(location_t) || share(hometown_t) {
                    labels.insert(x, y, FAMILY);
                }
            }
        }
    }
    // classmate: same school ∧ (same degree ∨ same major).
    for &s in &schools {
        let members = graph.neighbors_of_type(s, user_t);
        for (ai, &x) in members.iter().enumerate() {
            for &y in &members[ai + 1..] {
                let share = |t| {
                    graph
                        .neighbors_of_type(x, t)
                        .iter()
                        .any(|v| graph.neighbors_of_type(y, t).contains(v))
                };
                if share(degree_t) || share(major_t) {
                    labels.insert(x, y, CLASSMATE);
                }
            }
        }
    }

    // --- 5 % label noise: randomise the class of a sampled fraction of
    // labelled pairs (and a matching number of fresh random pairs).
    let n_noise = (labels.n_pairs() as f64 * cfg.label_noise) as usize;
    for _ in 0..n_noise {
        let x = user_ids[rng.random_range(0..user_ids.len())];
        let y = user_ids[rng.random_range(0..user_ids.len())];
        let class = if rng.random_bool(0.5) {
            FAMILY
        } else {
            CLASSMATE
        };
        labels.insert(x, y, class);
    }

    Dataset {
        name: "Facebook-like".to_owned(),
        graph,
        labels,
        class_names: vec!["family".to_owned(), "classmate".to_owned()],
        anchor_type: user_t,
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn shape_matches_schema() {
        let d = generate_facebook(&FacebookConfig::tiny(1));
        assert_eq!(d.graph.n_types(), 10);
        assert_eq!(d.class_names, vec!["family", "classmate"]);
        let user_t = d.anchor_type;
        assert_eq!(d.graph.n_nodes_of_type(user_t), 90);
        assert!(d.graph.n_edges() > 0);
    }

    #[test]
    fn both_classes_populated_with_queries() {
        let d = generate_facebook(&FacebookConfig::tiny(2));
        for class in d.classes() {
            let queries = d.labels.queries_of_class(class);
            assert!(
                queries.len() >= 4,
                "class {class:?} has too few queries: {}",
                queries.len()
            );
        }
    }

    #[test]
    fn family_rule_holds_for_most_labeled_pairs() {
        let d = generate_facebook(&FacebookConfig::tiny(3));
        let g = &d.graph;
        let surname_t = g.types().id("surname").unwrap();
        let loc_t = g.types().id("location").unwrap();
        let home_t = g.types().id("hometown").unwrap();
        let pairs = d.labels.pairs_of_class(FAMILY);
        assert!(!pairs.is_empty());
        let rule_ok = pairs
            .iter()
            .filter(|&&(x, y)| {
                let share = |t| {
                    g.neighbors_of_type(x, t)
                        .iter()
                        .any(|v| g.neighbors_of_type(y, t).contains(v))
                };
                share(surname_t) && (share(loc_t) || share(home_t))
            })
            .count();
        // All but the ~5% noise follow the rule.
        assert!(
            rule_ok as f64 >= pairs.len() as f64 * 0.85,
            "{rule_ok}/{}",
            pairs.len()
        );
    }

    #[test]
    fn deterministic_per_seed() {
        let a = generate_facebook(&FacebookConfig::tiny(5));
        let b = generate_facebook(&FacebookConfig::tiny(5));
        assert_eq!(a.graph.n_nodes(), b.graph.n_nodes());
        assert_eq!(a.graph.n_edges(), b.graph.n_edges());
        assert_eq!(a.labels.n_pairs(), b.labels.n_pairs());
        let c = generate_facebook(&FacebookConfig::tiny(6));
        // Different seed ⇒ (almost surely) different structure.
        assert!(a.graph.n_edges() != c.graph.n_edges() || a.labels.n_pairs() != c.labels.n_pairs());
    }

    #[test]
    fn default_scale_reasonable() {
        let d = generate_facebook(&FacebookConfig::default());
        assert!(d.graph.n_nodes() > 1000);
        assert!(d.graph.n_edges() > 4000);
        // Degrees stay bounded so matching stays tractable. (The `degree`
        // attribute type has only a handful of values, so those nodes are
        // natural hubs — a few hundred is expected at this scale.)
        assert!(
            d.graph.max_degree() < 420,
            "max degree {}",
            d.graph.max_degree()
        );
    }
}

//! The paper's running example: the Fig. 1 toy graph and Fig. 2
//! metagraphs.
//!
//! Five users (Alice, Bob, Kate, Jay, Tom) interconnected with attribute
//! values of seven types. The expected search results of Fig. 1(b) —
//! e.g. Kate's close friends are Alice (same employer and hobby) and Jay
//! (same address) — are exercised by tests and the quickstart example.

use mgp_graph::{Graph, GraphBuilder, TypeId};
use mgp_metagraph::Metagraph;

/// Handles to the toy graph's named parts.
#[derive(Debug, Clone)]
pub struct ToyGraph {
    /// The graph itself.
    pub graph: Graph,
    /// The `user` type.
    pub user: TypeId,
}

/// Builds the Fig. 1 toy graph.
///
/// Edges (from the figure): Alice and Bob share surname Clinton and the
/// address 123 Green St; Alice, Kate work at Company X and share the Music
/// hobby; Kate and Jay share 456 White St, College B and Economics; Bob and
/// Tom attend College A with the Physics major; Jay also attends College B
/// with Economics.
pub fn toy_graph() -> ToyGraph {
    let mut b = GraphBuilder::new();
    let user = b.add_type("user");
    let surname = b.add_type("surname");
    let address = b.add_type("address");
    let school = b.add_type("school");
    let major = b.add_type("major");
    let employer = b.add_type("employer");
    let hobby = b.add_type("hobby");

    let alice = b.add_node(user, "Alice");
    let bob = b.add_node(user, "Bob");
    let kate = b.add_node(user, "Kate");
    let jay = b.add_node(user, "Jay");
    let tom = b.add_node(user, "Tom");

    let clinton = b.add_node(surname, "Clinton");
    let green = b.add_node(address, "123 Green St");
    let white = b.add_node(address, "456 White St");
    let college_a = b.add_node(school, "College A");
    let college_b = b.add_node(school, "College B");
    let economics = b.add_node(major, "Economics");
    let physics = b.add_node(major, "Physics");
    let company_x = b.add_node(employer, "Company X");
    let music = b.add_node(hobby, "Music");

    let edges = [
        (alice, clinton),
        (bob, clinton),
        (alice, green),
        (bob, green),
        (alice, company_x),
        (kate, company_x),
        (alice, music),
        (kate, music),
        (kate, white),
        (jay, white),
        (kate, college_b),
        (jay, college_b),
        (kate, economics),
        (jay, economics),
        (bob, college_a),
        (tom, college_a),
        (bob, physics),
        (tom, physics),
    ];
    for (x, y) in edges {
        b.add_edge(x, y).expect("toy edges valid");
    }
    ToyGraph {
        graph: b.build(),
        user,
    }
}

/// The Fig. 2 toy metagraphs, expressed against [`toy_graph`]'s type ids.
///
/// Returns `(M1 classmate, M2 close-friend, M3 close-friend-path,
/// M4 family)`.
pub fn toy_metagraphs(g: &Graph) -> (Metagraph, Metagraph, Metagraph, Metagraph) {
    let t = |name: &str| g.types().id(name).expect("toy type");
    let user = t("user");
    // M1: user—school—user + user—major—user joint.
    let m1 = Metagraph::from_edges(
        &[user, user, t("school"), t("major")],
        &[(0, 2), (1, 2), (0, 3), (1, 3)],
    )
    .unwrap();
    // M2: user—employer—user + user—hobby—user joint.
    let m2 = Metagraph::from_edges(
        &[user, user, t("employer"), t("hobby")],
        &[(0, 2), (1, 2), (0, 3), (1, 3)],
    )
    .unwrap();
    // M3: user—address—user (a metapath).
    let m3 = Metagraph::from_edges(&[user, t("address"), user], &[(0, 1), (1, 2)]).unwrap();
    // M4: user—surname—user + user—address—user joint.
    let m4 = Metagraph::from_edges(
        &[user, user, t("surname"), t("address")],
        &[(0, 2), (1, 2), (0, 3), (1, 3)],
    )
    .unwrap();
    (m1, m2, m3, m4)
}

#[cfg(test)]
mod tests {
    use super::*;
    use mgp_matching::{count_instances, PatternInfo, SymIso};

    #[test]
    fn graph_shape() {
        let toy = toy_graph();
        let g = &toy.graph;
        assert_eq!(g.n_nodes(), 14);
        assert_eq!(g.n_edges(), 18);
        assert_eq!(g.n_types(), 7);
        assert_eq!(g.n_nodes_of_type(toy.user), 5);
    }

    #[test]
    fn fig1b_expectations_via_instances() {
        let toy = toy_graph();
        let g = &toy.graph;
        let (m1, m2, m3, m4) = toy_metagraphs(g);
        let kate = g.node_by_label("Kate").unwrap();
        let jay = g.node_by_label("Jay").unwrap();
        let alice = g.node_by_label("Alice").unwrap();
        let bob = g.node_by_label("Bob").unwrap();
        let tom = g.node_by_label("Tom").unwrap();

        // Classmate (M1): Kate~Jay and Bob~Tom.
        let p1 = PatternInfo::new(m1, toy.user);
        let c1 = mgp_matching::anchor::anchor_counts(&SymIso::new(), g, &p1);
        assert_eq!(c1.pair_count(kate, jay), 1);
        assert_eq!(c1.pair_count(bob, tom), 1);
        assert_eq!(c1.pair_count(kate, alice), 0);

        // Close friend (M2): Kate~Alice (same employer and hobby).
        let p2 = PatternInfo::new(m2, toy.user);
        let c2 = mgp_matching::anchor::anchor_counts(&SymIso::new(), g, &p2);
        assert_eq!(c2.pair_count(kate, alice), 1);
        assert_eq!(c2.pair_count(kate, jay), 0);

        // M3 (shared address): Kate~Jay and Alice~Bob.
        let p3 = PatternInfo::new(m3, toy.user);
        let c3 = mgp_matching::anchor::anchor_counts(&SymIso::new(), g, &p3);
        assert_eq!(c3.pair_count(kate, jay), 1);
        assert_eq!(c3.pair_count(alice, bob), 1);

        // Family (M4): Alice~Bob only.
        let p4 = PatternInfo::new(m4, toy.user);
        let c4 = mgp_matching::anchor::anchor_counts(&SymIso::new(), g, &p4);
        assert_eq!(c4.pair_count(alice, bob), 1);
        assert_eq!(c4.n_instances, 1);
    }

    #[test]
    fn instance_counts_match_figure() {
        let toy = toy_graph();
        let g = &toy.graph;
        let (m1, m2, m3, m4) = toy_metagraphs(g);
        for (m, expect) in [(m1, 2), (m2, 1), (m3, 2), (m4, 1)] {
            let p = PatternInfo::new(m, toy.user);
            assert_eq!(count_instances(&SymIso::new(), g, &p), expect);
        }
    }
}

//! Ground-truth semantic-class labels over anchor pairs, and the dataset
//! bundle handed to experiments.

use mgp_graph::ids::{pack_pair, unpack_pair};
use mgp_graph::{FxHashMap, Graph, NodeId, TypeId};
use serde::{Deserialize, Serialize};

/// A semantic class of proximity (e.g. *family*, *classmate*).
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash, Serialize, Deserialize)]
#[serde(transparent)]
pub struct ClassId(pub u8);

/// Multi-class labels over unordered anchor pairs.
///
/// A pair may carry several class labels (e.g. family members who are also
/// classmates). Backed by a bitmask per pair, so up to 8 classes.
#[derive(Debug, Clone, Default, Serialize, Deserialize)]
pub struct PairLabels {
    map: FxHashMap<u64, u8>,
}

impl PairLabels {
    /// Creates an empty label store.
    pub fn new() -> Self {
        Self::default()
    }

    /// Labels the unordered pair `{x, y}` with `class`.
    pub fn insert(&mut self, x: NodeId, y: NodeId, class: ClassId) {
        debug_assert!(class.0 < 8);
        if x == y {
            return;
        }
        *self.map.entry(pack_pair(x, y)).or_insert(0) |= 1 << class.0;
    }

    /// Whether `{x, y}` carries `class`.
    pub fn has(&self, x: NodeId, y: NodeId, class: ClassId) -> bool {
        if x == y {
            return false;
        }
        self.map
            .get(&pack_pair(x, y))
            .is_some_and(|&bits| bits & (1 << class.0) != 0)
    }

    /// Whether `{x, y}` carries any class label at all.
    pub fn has_any(&self, x: NodeId, y: NodeId) -> bool {
        if x == y {
            return false;
        }
        self.map.get(&pack_pair(x, y)).is_some_and(|&b| b != 0)
    }

    /// Number of labelled pairs (any class).
    pub fn n_pairs(&self) -> usize {
        self.map.len()
    }

    /// All pairs carrying `class`, as `(min, max)` node pairs.
    pub fn pairs_of_class(&self, class: ClassId) -> Vec<(NodeId, NodeId)> {
        let mut out: Vec<(NodeId, NodeId)> = self
            .map
            .iter()
            .filter(|(_, &bits)| bits & (1 << class.0) != 0)
            .map(|(&key, _)| unpack_pair(key))
            .collect();
        out.sort_unstable();
        out
    }

    /// The positive answers for query `q` under `class`, sorted.
    pub fn positives_of(&self, q: NodeId, class: ClassId) -> Vec<NodeId> {
        let mut out: Vec<NodeId> = self
            .map
            .iter()
            .filter(|(_, &bits)| bits & (1 << class.0) != 0)
            .filter_map(|(&key, _)| {
                let (a, b) = unpack_pair(key);
                if a == q {
                    Some(b)
                } else if b == q {
                    Some(a)
                } else {
                    None
                }
            })
            .collect();
        out.sort_unstable();
        out
    }

    /// All valid query nodes for `class`: anchors with ≥ 1 positive
    /// (the paper's query-selection rule, Sect. V-A), sorted.
    pub fn queries_of_class(&self, class: ClassId) -> Vec<NodeId> {
        let mut out: Vec<NodeId> = Vec::new();
        for (&key, &bits) in &self.map {
            if bits & (1 << class.0) != 0 {
                let (a, b) = unpack_pair(key);
                out.push(a);
                out.push(b);
            }
        }
        out.sort_unstable();
        out.dedup();
        out
    }
}

/// A generated dataset: the graph, its ground truth, and bookkeeping.
#[derive(Debug, Clone)]
pub struct Dataset {
    /// Short dataset name (e.g. `"Facebook-like"`).
    pub name: String,
    /// The typed object graph.
    pub graph: Graph,
    /// Ground-truth pair labels.
    pub labels: PairLabels,
    /// Class names, indexed by `ClassId`.
    pub class_names: Vec<String>,
    /// The anchor type (always `user` here).
    pub anchor_type: TypeId,
}

impl Dataset {
    /// The [`ClassId`] of a class name.
    pub fn class(&self, name: &str) -> Option<ClassId> {
        self.class_names
            .iter()
            .position(|n| n == name)
            .map(|i| ClassId(i as u8))
    }

    /// All class ids.
    pub fn classes(&self) -> Vec<ClassId> {
        (0..self.class_names.len() as u8).map(ClassId).collect()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    const FAMILY: ClassId = ClassId(0);
    const CLASSMATE: ClassId = ClassId(1);

    #[test]
    fn insert_and_query() {
        let mut l = PairLabels::new();
        l.insert(NodeId(1), NodeId(2), FAMILY);
        l.insert(NodeId(2), NodeId(1), CLASSMATE); // order-insensitive
        assert!(l.has(NodeId(1), NodeId(2), FAMILY));
        assert!(l.has(NodeId(1), NodeId(2), CLASSMATE));
        assert!(l.has_any(NodeId(2), NodeId(1)));
        assert!(!l.has(NodeId(1), NodeId(3), FAMILY));
        assert_eq!(l.n_pairs(), 1);
    }

    #[test]
    fn self_pairs_ignored() {
        let mut l = PairLabels::new();
        l.insert(NodeId(1), NodeId(1), FAMILY);
        assert_eq!(l.n_pairs(), 0);
        assert!(!l.has(NodeId(1), NodeId(1), FAMILY));
    }

    #[test]
    fn positives_and_queries() {
        let mut l = PairLabels::new();
        l.insert(NodeId(1), NodeId(2), FAMILY);
        l.insert(NodeId(1), NodeId(3), FAMILY);
        l.insert(NodeId(4), NodeId(5), CLASSMATE);
        assert_eq!(
            l.positives_of(NodeId(1), FAMILY),
            vec![NodeId(2), NodeId(3)]
        );
        assert!(l.positives_of(NodeId(1), CLASSMATE).is_empty());
        assert_eq!(
            l.queries_of_class(FAMILY),
            vec![NodeId(1), NodeId(2), NodeId(3)]
        );
        assert_eq!(l.queries_of_class(CLASSMATE), vec![NodeId(4), NodeId(5)]);
        assert_eq!(
            l.pairs_of_class(FAMILY),
            vec![(NodeId(1), NodeId(2)), (NodeId(1), NodeId(3))]
        );
    }
}

//! # mgp-datagen — datasets for semantic proximity search
//!
//! The paper evaluates on two proprietary crawls: a LinkedIn graph
//! (65 925 nodes, 4 types, labelled *college* / *coworker* relationships)
//! and a Facebook ego-network graph (5 025 nodes, 10 types, rule-generated
//! *family* / *classmate* labels). Neither is publicly available, so this
//! crate generates synthetic graphs with the same type schema, the same
//! ground-truth semantics and the same statistical *shape* (each semantic
//! class is characterised by a small set of shared-attribute metagraphs
//! drowned in a long tail of irrelevant ones) — see DESIGN.md §3 for the
//! substitution rationale.
//!
//! * [`toy`] — the paper's running example: the Fig. 1 graph (Alice, Bob,
//!   Kate, Jay, Tom) and the Fig. 2 metagraphs M1–M4.
//! * [`facebook`] — Facebook-like generator with the 10 attribute types of
//!   Sect. V-A and the paper's exact label rules (family = same surname ∧
//!   same location/hometown; classmate = same school ∧ same degree/major;
//!   5 % label noise).
//! * [`linkedin`] — LinkedIn-like generator with 4 types and planted
//!   college/employer communities emitting college/coworker labels.
//! * [`labels`] — multi-class pair-label store and query extraction.
//!
//! All generators are deterministic given a seed.

#![warn(missing_docs)]

pub mod facebook;
pub mod labels;
pub mod linkedin;
pub mod toy;

pub use facebook::{generate_facebook, FacebookConfig};
pub use labels::{ClassId, Dataset, PairLabels};
pub use linkedin::{generate_linkedin, LinkedInConfig};

//! LinkedIn-like synthetic graph generator (Sect. V-A shape).
//!
//! Four object types — `user`, `employer`, `location`, `college` — matching
//! the paper's LinkedIn dataset, whose relationships were *labelled by
//! users* ("college", "coworker"/"colleague"/"excolleague"). Since labels
//! came from people rather than rules, they correlate strongly but not
//! perfectly with shared affiliations. The generator reproduces that: it
//! plants college communities and employer communities, wires users to
//! their attributes, and emits labels for co-affiliated pairs with a
//! configurable recall (plus a little cross-class and random noise).

use crate::labels::{ClassId, Dataset, PairLabels};
use mgp_graph::{GraphBuilder, NodeId};
use rand::{Rng, SeedableRng};
use rand_chacha::ChaCha8Rng;
use serde::{Deserialize, Serialize};

/// The *college friend* class of the LinkedIn-like dataset.
pub const COLLEGE: ClassId = ClassId(0);
/// The *coworker* class of the LinkedIn-like dataset.
pub const COWORKER: ClassId = ClassId(1);

/// Configuration for [`generate_linkedin`].
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct LinkedInConfig {
    /// Number of user nodes.
    pub n_users: usize,
    /// Number of college values.
    pub n_colleges: usize,
    /// Number of employer values.
    pub n_employers: usize,
    /// Number of location values.
    pub n_locations: usize,
    /// Probability that a pair sharing a college *and* a location (i.e.
    /// plausibly overlapping in person) is labelled `college`.
    pub college_recall: f64,
    /// Probability that a pair sharing only a college is still labelled
    /// `college` (remote acquaintances).
    pub college_weak_recall: f64,
    /// Probability that a pair sharing an employer *and* a location (same
    /// office) is labelled `coworker`.
    pub coworker_recall: f64,
    /// Probability that a pair sharing only an employer is still labelled
    /// `coworker`.
    pub coworker_weak_recall: f64,
    /// Fraction of labelled pairs whose class is randomised.
    pub label_noise: f64,
    /// RNG seed.
    pub seed: u64,
}

impl Default for LinkedInConfig {
    /// CI-friendly scale (~1 100 nodes) preserving Table II's shape.
    fn default() -> Self {
        LinkedInConfig {
            n_users: 1000,
            n_colleges: 60,
            n_employers: 90,
            n_locations: 50,
            college_recall: 0.9,
            college_weak_recall: 0.1,
            coworker_recall: 0.9,
            coworker_weak_recall: 0.1,
            label_noise: 0.05,
            seed: 11,
        }
    }
}

impl LinkedInConfig {
    /// Scaled towards the magnitudes of the paper's Table II (tens of
    /// thousands of nodes — expect multi-minute matching times, like the
    /// paper's Table III).
    pub fn paper_scale() -> Self {
        LinkedInConfig {
            n_users: 50_000,
            n_colleges: 3_000,
            n_employers: 5_000,
            n_locations: 2_000,
            ..Self::default()
        }
    }

    /// Tiny scale for unit tests.
    pub fn tiny(seed: u64) -> Self {
        LinkedInConfig {
            n_users: 120,
            n_colleges: 8,
            n_employers: 10,
            n_locations: 6,
            seed,
            ..Self::default()
        }
    }
}

/// Generates the LinkedIn-like dataset.
pub fn generate_linkedin(cfg: &LinkedInConfig) -> Dataset {
    let mut rng = ChaCha8Rng::seed_from_u64(cfg.seed);
    let mut b = GraphBuilder::new();

    let user_t = b.add_type("user");
    let employer_t = b.add_type("employer");
    let location_t = b.add_type("location");
    let college_t = b.add_type("college");

    let colleges: Vec<NodeId> = (0..cfg.n_colleges)
        .map(|i| b.add_node(college_t, format!("college{i}")))
        .collect();
    let employers: Vec<NodeId> = (0..cfg.n_employers)
        .map(|i| b.add_node(employer_t, format!("employer{i}")))
        .collect();
    let locations: Vec<NodeId> = (0..cfg.n_locations)
        .map(|i| b.add_node(location_t, format!("loc{i}")))
        .collect();
    let users: Vec<NodeId> = (0..cfg.n_users)
        .map(|i| b.add_node(user_t, format!("user{i}")))
        .collect();

    // Affiliations: one college (some users a second), 1–2 employers,
    // one location. Employers correlate with location (regional offices),
    // making user–location–user a weak, confusable signal for coworker —
    // the kind of ambiguity the learner must sort out.
    for &u in &users {
        let c = rng.random_range(0..colleges.len());
        b.add_edge(u, colleges[c]).unwrap();
        if rng.random_bool(0.1) {
            b.add_edge(u, colleges[rng.random_range(0..colleges.len())])
                .unwrap();
        }
        let e = rng.random_range(0..employers.len());
        b.add_edge(u, employers[e]).unwrap();
        if rng.random_bool(0.3) {
            b.add_edge(u, employers[rng.random_range(0..employers.len())])
                .unwrap();
        }
        // Location correlates with both affiliations (office region,
        // campus town) — the AND-attribute of both semantic classes.
        let roll: f64 = rng.random();
        let loc = if roll < 0.4 {
            locations[e % locations.len()] // employer-tied
        } else if roll < 0.8 {
            locations[c % locations.len()] // college-tied
        } else {
            locations[rng.random_range(0..locations.len())]
        };
        b.add_edge(u, loc).unwrap();
    }

    let graph = b.build();

    // Labels from co-affiliation. Human relationship labels are *graded*:
    // sharing the affiliation makes the label possible, actually having
    // overlapped in person (shared location) makes it likely, and a hidden
    // temporal overlap (era — people years apart never met, and the era is
    // NOT observable in the graph) caps what any structure can predict.
    // This gives the weight-learning problem the paper's character: several
    // metagraphs carry signal to different extents (joint college+location
    // strongest, plain paths weak), no pattern is deterministic, and the
    // optimal weights form the long-tailed mixture of Fig. 4.
    let era: Vec<u8> = (0..cfg.n_users)
        .map(|_| rng.random_range(0..10u8))
        .collect();
    let era_of = |u: NodeId| {
        // Users were created after all attribute nodes, densely.
        let first_user = (cfg.n_colleges + cfg.n_employers + cfg.n_locations) as u32;
        era[(u.0 - first_user) as usize]
    };
    let mut labels = PairLabels::new();
    let share_location = |x: NodeId, y: NodeId| {
        graph
            .neighbors_of_type(x, location_t)
            .iter()
            .any(|v| graph.neighbors_of_type(y, location_t).contains(v))
    };
    let co_affiliation_labels = |attr_nodes: &[NodeId],
                                 class: ClassId,
                                 strong: f64,
                                 weak: f64,
                                 rng: &mut ChaCha8Rng,
                                 labels: &mut PairLabels| {
        for &a in attr_nodes {
            let members = graph.neighbors_of_type(a, user_t);
            for (ai, &x) in members.iter().enumerate() {
                for &y in &members[ai + 1..] {
                    let overlap = era_of(x).abs_diff(era_of(y)) <= 2;
                    let p = match (share_location(x, y), overlap) {
                        (true, true) => strong,
                        (true, false) => weak,
                        (false, true) => weak,
                        (false, false) => weak * 0.3,
                    };
                    if rng.random_bool(p) {
                        labels.insert(x, y, class);
                    }
                }
            }
        }
    };
    co_affiliation_labels(
        &colleges,
        COLLEGE,
        cfg.college_recall,
        cfg.college_weak_recall,
        &mut rng,
        &mut labels,
    );
    co_affiliation_labels(
        &employers,
        COWORKER,
        cfg.coworker_recall,
        cfg.coworker_weak_recall,
        &mut rng,
        &mut labels,
    );

    // Noise pairs.
    let n_noise = (labels.n_pairs() as f64 * cfg.label_noise) as usize;
    for _ in 0..n_noise {
        let x = users[rng.random_range(0..users.len())];
        let y = users[rng.random_range(0..users.len())];
        let class = if rng.random_bool(0.5) {
            COLLEGE
        } else {
            COWORKER
        };
        labels.insert(x, y, class);
    }

    Dataset {
        name: "LinkedIn-like".to_owned(),
        graph,
        labels,
        class_names: vec!["college".to_owned(), "coworker".to_owned()],
        anchor_type: user_t,
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn schema_is_four_types() {
        let d = generate_linkedin(&LinkedInConfig::tiny(1));
        assert_eq!(d.graph.n_types(), 4);
        assert_eq!(
            d.graph
                .types()
                .iter()
                .map(|(_, n)| n.to_owned())
                .collect::<Vec<_>>(),
            vec!["user", "employer", "location", "college"]
        );
    }

    #[test]
    fn labels_exist_for_both_classes() {
        let d = generate_linkedin(&LinkedInConfig::tiny(2));
        assert!(!d.labels.pairs_of_class(COLLEGE).is_empty());
        assert!(!d.labels.pairs_of_class(COWORKER).is_empty());
        assert!(d.labels.queries_of_class(COLLEGE).len() >= 10);
        assert!(d.labels.queries_of_class(COWORKER).len() >= 10);
    }

    #[test]
    fn college_labels_mostly_share_college() {
        let d = generate_linkedin(&LinkedInConfig::tiny(3));
        let g = &d.graph;
        let college_t = g.types().id("college").unwrap();
        let pairs = d.labels.pairs_of_class(COLLEGE);
        let ok = pairs
            .iter()
            .filter(|&&(x, y)| {
                g.neighbors_of_type(x, college_t)
                    .iter()
                    .any(|v| g.neighbors_of_type(y, college_t).contains(v))
            })
            .count();
        assert!(
            ok as f64 >= pairs.len() as f64 * 0.85,
            "{ok}/{}",
            pairs.len()
        );
    }

    #[test]
    fn every_user_connected() {
        let d = generate_linkedin(&LinkedInConfig::tiny(4));
        let user_t = d.anchor_type;
        for &u in d.graph.nodes_of_type(user_t) {
            assert!(d.graph.degree(u) >= 3); // college + employer + location
        }
    }

    #[test]
    fn deterministic_per_seed() {
        let a = generate_linkedin(&LinkedInConfig::tiny(9));
        let b = generate_linkedin(&LinkedInConfig::tiny(9));
        assert_eq!(a.graph.n_edges(), b.graph.n_edges());
        assert_eq!(a.labels.n_pairs(), b.labels.n_pairs());
    }

    #[test]
    fn default_scale_reasonable() {
        let d = generate_linkedin(&LinkedInConfig::default());
        assert!(d.graph.n_nodes() > 1000);
        assert!(
            d.graph.max_degree() < 250,
            "max degree {}",
            d.graph.max_degree()
        );
    }
}

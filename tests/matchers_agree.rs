//! Property-based cross-matcher agreement: on random typed graphs, every
//! matcher must produce the identical instance set for every pattern, and
//! SymISO's counts must equal the baselines' embedding counts divided by
//! |Aut(M)|.

use proptest::prelude::*;
use semantic_proximity::graph::{Graph, GraphBuilder, NodeId, TypeId};
use semantic_proximity::matching::{
    anchor::anchor_counts, collect_instances, count_embeddings, count_instances, Matcher,
    PatternInfo, QuickSi, SymIso, TurboLite, Vf2,
};
use semantic_proximity::metagraph::Metagraph;

const USER: TypeId = TypeId(0);
const A: TypeId = TypeId(1);
const B: TypeId = TypeId(2);

/// Random bipartite-ish typed graph: users plus two attribute types, with
/// edges chosen by the seed bits.
fn random_graph(n_users: usize, n_a: usize, n_b: usize, edges: &[(usize, usize)]) -> Graph {
    let mut g = GraphBuilder::new();
    let user = g.add_type("user");
    let ta = g.add_type("a");
    let tb = g.add_type("b");
    let mut nodes = Vec::new();
    for i in 0..n_users {
        nodes.push(g.add_node(user, format!("u{i}")));
    }
    for i in 0..n_a {
        nodes.push(g.add_node(ta, format!("a{i}")));
    }
    for i in 0..n_b {
        nodes.push(g.add_node(tb, format!("b{i}")));
    }
    for &(x, y) in edges {
        let (x, y) = (x % nodes.len(), y % nodes.len());
        if x != y {
            g.add_edge(nodes[x], nodes[y]).unwrap();
        }
    }
    g.build()
}

/// Catalogue of patterns exercising paths, joints, stars and triangles.
fn pattern_catalogue() -> Vec<Metagraph> {
    vec![
        Metagraph::from_edges(&[USER, A, USER], &[(0, 1), (1, 2)]).unwrap(),
        Metagraph::from_edges(&[USER, B, USER], &[(0, 1), (1, 2)]).unwrap(),
        Metagraph::from_edges(&[USER, A, B, USER], &[(0, 1), (3, 1), (0, 2), (3, 2)]).unwrap(),
        Metagraph::from_edges(&[USER, A, USER, B, USER], &[(0, 1), (1, 2), (2, 3), (3, 4)])
            .unwrap(),
        Metagraph::from_edges(&[A, USER, USER, USER], &[(0, 1), (0, 2), (0, 3)]).unwrap(),
        Metagraph::from_edges(&[USER, USER, USER], &[(0, 1), (1, 2), (0, 2)]).unwrap(),
        Metagraph::from_edges(&[USER, USER, A, B], &[(0, 2), (1, 2), (0, 3), (1, 3)]).unwrap(),
        // 6-cycle with residual symmetry (r > 1 exercises the divisor).
        Metagraph::from_edges(
            &[USER, A, USER, A, USER, A],
            &[(0, 1), (1, 2), (2, 3), (3, 4), (4, 5), (5, 0)],
        )
        .unwrap(),
    ]
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(24))]

    #[test]
    fn all_matchers_agree_on_random_graphs(
        n_users in 3usize..8,
        n_a in 1usize..4,
        n_b in 1usize..4,
        edges in prop::collection::vec((0usize..40, 0usize..40), 5..40),
        seed in 0u64..1000,
    ) {
        let g = random_graph(n_users, n_a, n_b, &edges);
        let matchers: Vec<Box<dyn Matcher>> = vec![
            Box::new(QuickSi),
            Box::new(Vf2),
            Box::new(TurboLite),
            Box::new(SymIso::new()),
            Box::new(SymIso::random_order(seed)),
        ];
        for m in pattern_catalogue() {
            let p = PatternInfo::new(m.clone(), USER);
            let reference = collect_instances(&QuickSi, &g, &p);
            for matcher in &matchers {
                let got = collect_instances(matcher.as_ref(), &g, &p);
                prop_assert_eq!(
                    &got, &reference,
                    "matcher {} disagrees on {}", matcher.name(), m.brief()
                );
                prop_assert_eq!(
                    count_instances(matcher.as_ref(), &g, &p),
                    reference.len() as u64,
                    "count mismatch for {} on {}", matcher.name(), m.brief()
                );
            }
        }
    }

    #[test]
    fn all_matchers_agree_on_anchor_counts(
        n_users in 3usize..8,
        n_a in 1usize..4,
        n_b in 1usize..4,
        edges in prop::collection::vec((0usize..40, 0usize..40), 5..40),
        seed in 0u64..1000,
    ) {
        // The quantity the rest of the pipeline actually consumes (m_x and
        // m_xy of Eq. 1-2) must be matcher-independent: every matcher and
        // every matching order yields the same anchor counts.
        let g = random_graph(n_users, n_a, n_b, &edges);
        let matchers: Vec<Box<dyn Matcher>> = vec![
            Box::new(Vf2),
            Box::new(TurboLite),
            Box::new(SymIso::new()),
            Box::new(SymIso::random_order(seed)),
        ];
        for m in pattern_catalogue() {
            let p = PatternInfo::new(m.clone(), USER);
            let reference = anchor_counts(&QuickSi, &g, &p);
            for matcher in &matchers {
                let got = anchor_counts(matcher.as_ref(), &g, &p);
                prop_assert_eq!(
                    &got, &reference,
                    "anchor counts of {} disagree on {}", matcher.name(), m.brief()
                );
            }
        }
    }

    #[test]
    fn symiso_divides_out_automorphisms(
        n_users in 3usize..7,
        edges in prop::collection::vec((0usize..30, 0usize..30), 5..30),
    ) {
        let g = random_graph(n_users, 3, 2, &edges);
        for m in pattern_catalogue() {
            let p = PatternInfo::new(m, USER);
            let emb = count_embeddings(&QuickSi, &g, &p);
            let aut = p.aut_count();
            prop_assert_eq!(emb % aut, 0, "embeddings not divisible by |Aut|");
            let sym_visits = count_embeddings(&SymIso::new(), &g, &p);
            let r = p.residual_factor();
            prop_assert_eq!(sym_visits % r, 0);
            prop_assert_eq!(sym_visits / r, emb / aut);
        }
    }
}

#[test]
fn instances_are_valid_subgraph_images() {
    // Deterministic spot-check that enumerated instances satisfy Def. 2.
    let edges: Vec<(usize, usize)> = (0..30).map(|i| (i, i * 7 + 3)).collect();
    let g = random_graph(6, 3, 2, &edges);
    for m in pattern_catalogue() {
        let p = PatternInfo::new(m.clone(), USER);
        for inst in collect_instances(&SymIso::new(), &g, &p) {
            let a: &[NodeId] = &inst.assignment;
            // Types preserved.
            for (u, &v) in a.iter().enumerate() {
                assert_eq!(g.node_type(v), m.node_type(u));
            }
            // Injective.
            let mut sorted = a.to_vec();
            sorted.sort_unstable();
            sorted.dedup();
            assert_eq!(sorted.len(), a.len());
            // Every pattern edge realised.
            for (u, v) in m.edges() {
                assert!(g.has_edge(a[u], a[v]));
            }
        }
    }
}

//! Deterministic end-to-end regression: the full pipeline (generate →
//! mine → match → index → train → rank) on the toy-scale Facebook dataset
//! with pinned seeds must stay above a pinned NDCG@10 floor.
//!
//! Everything in the pipeline is deterministic given the seeds (dataset
//! generation, example sampling, training restarts), so a drop below the
//! floor can only come from a behaviour change in the pipeline itself —
//! this is the guard rail for future performance refactors. The serving
//! path (`SearchEngine::serve`) is evaluated alongside the per-query path
//! and must produce the identical ranking, so the guard covers both.

use rand::SeedableRng;
use rand_chacha::ChaCha8Rng;
use semantic_proximity::datagen::facebook::{generate_facebook, FacebookConfig, CLASSMATE, FAMILY};
use semantic_proximity::engine::{PipelineConfig, SearchEngine, TrainingStrategy};
use semantic_proximity::eval::{evaluate_ranker, repeated_splits};
use semantic_proximity::learning::sample_examples;

/// Pinned quality floors, set ≈ 25 % below the values measured at the time
/// of pinning (family ≈ 0.89, classmate ≈ 0.87 with these seeds) so noise
/// from a legitimate refactor of float summation order has headroom while
/// real regressions (broken matching, mis-indexed vectors, training bugs)
/// fall through.
const FAMILY_NDCG10_FLOOR: f64 = 0.65;
const CLASSMATE_NDCG10_FLOOR: f64 = 0.65;

const DATASET_SEED: u64 = 7;
const SPLIT_SEED: u64 = 11;
const EXAMPLE_SEED: u64 = 13;

#[test]
fn full_pipeline_ndcg_stays_above_pinned_floor() {
    let d = generate_facebook(&FacebookConfig::tiny(DATASET_SEED));
    let mut cfg = PipelineConfig::new(d.anchor_type, 5);
    cfg.train = semantic_proximity::learning::TrainConfig::fast(1);
    cfg.strategy = TrainingStrategy::Full;
    let mut engine = SearchEngine::build(d.graph.clone(), cfg);

    let anchors: Vec<_> = d.graph.nodes_of_type(d.anchor_type).to_vec();
    for (name, class, floor) in [
        ("family", FAMILY, FAMILY_NDCG10_FLOOR),
        ("classmate", CLASSMATE, CLASSMATE_NDCG10_FLOOR),
    ] {
        let queries = d.labels.queries_of_class(class);
        let split = &repeated_splits(&queries, 0.2, 1, SPLIT_SEED)[0];
        let mut rng = ChaCha8Rng::seed_from_u64(EXAMPLE_SEED);
        let examples = sample_examples(
            &split.train,
            |q| d.labels.positives_of(q, class),
            |q, v| d.labels.has(q, v, class),
            &anchors,
            250,
            &mut rng,
        );
        engine.train_class(name, &examples);

        let positives = |q| d.labels.positives_of(q, class);
        let (ndcg, map) = evaluate_ranker(&split.test, 10, positives, |q| {
            engine
                .search(name, q, 10)
                .into_iter()
                .map(|(v, _)| v)
                .collect()
        });
        assert!(
            ndcg >= floor,
            "{name}: NDCG@10 regressed to {ndcg:.3} (floor {floor}); MAP@10 {map:.3}"
        );

        // The serving path must rank identically, so it inherits the floor.
        let server = engine.serve();
        let cid = server.class_id(name).unwrap();
        let batch = server.rank_batch(cid, &split.test, 10);
        for (&q, got) in split.test.iter().zip(&batch) {
            assert_eq!(**got, engine.search(name, q, 10), "serving diverged at {q}");
        }
    }
}

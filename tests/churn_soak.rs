//! Churn soak: a sequence of deltas that *nets to the original graph*
//! must restore every derived structure **exactly** — matcher count
//! caches, the model's vector index (vectors, pairs, partners), and the
//! `QueryServer` tables (postings, dot tables) — with no leaked empty
//! entries anywhere. This is the strongest form of the deletion
//! contract: insertions and deletions are exact inverses through the
//! whole graph → matching → index → serving chain.

use semantic_proximity::engine::scenario::{ClassSpec, PatternSelect};
use semantic_proximity::engine::{PipelineConfig, SearchEngine, TrainingStrategy};
use semantic_proximity::graph::delta::GraphDelta;
use semantic_proximity::graph::{Graph, GraphBuilder, NodeId, TypeId};
use semantic_proximity::index::VectorIndex;
use semantic_proximity::learning::{mgp, TrainConfig, TrainingExample};
use semantic_proximity::matching::AnchorCounts;
use semantic_proximity::metagraph::Metagraph;
use semantic_proximity::online::ServeConfig;

const USER: TypeId = TypeId(0);
const A: TypeId = TypeId(1);
const B: TypeId = TypeId(2);

fn base_graph() -> Graph {
    let mut g = GraphBuilder::new();
    let user = g.add_type("user");
    let ta = g.add_type("a");
    let tb = g.add_type("b");
    let users: Vec<NodeId> = (0..10).map(|i| g.add_node(user, format!("u{i}"))).collect();
    let attrs_a: Vec<NodeId> = (0..4).map(|i| g.add_node(ta, format!("a{i}"))).collect();
    let attrs_b: Vec<NodeId> = (0..3).map(|i| g.add_node(tb, format!("b{i}"))).collect();
    for (i, &u) in users.iter().enumerate() {
        g.add_edge(u, attrs_a[i % attrs_a.len()]).unwrap();
        g.add_edge(u, attrs_b[i % attrs_b.len()]).unwrap();
        if i % 2 == 0 {
            g.add_edge(u, attrs_a[(i + 1) % attrs_a.len()]).unwrap();
        }
        if i > 0 {
            g.add_edge(u, users[i - 1]).unwrap();
        }
    }
    g.build()
}

fn catalogue() -> Vec<Metagraph> {
    vec![
        Metagraph::from_edges(&[USER, A, USER], &[(0, 1), (1, 2)]).unwrap(),
        Metagraph::from_edges(&[USER, B, USER], &[(0, 1), (1, 2)]).unwrap(),
        Metagraph::from_edges(&[USER, A, B, USER], &[(0, 1), (3, 1), (0, 2), (3, 2)]).unwrap(),
        Metagraph::from_edges(&[USER, USER, USER], &[(0, 1), (1, 2), (0, 2)]).unwrap(),
    ]
}

fn pipeline_cfg() -> PipelineConfig {
    let mut cfg = PipelineConfig::new(USER, 1);
    cfg.train = TrainConfig::fast(5);
    cfg.strategy = TrainingStrategy::Full;
    cfg.threads = 1;
    cfg
}

fn examples() -> Vec<TrainingExample> {
    (0..8)
        .map(|i| TrainingExample {
            q: NodeId(i),
            x: NodeId((i + 1) % 10),
            y: NodeId((i + 2) % 10),
        })
        .collect()
}

/// Exact structural equality of two vector indexes: same vectors, same
/// pairs, same partner lists — in both directions, so neither side may
/// hold extra (even empty) entries.
fn assert_index_identical(got: &VectorIndex, want: &VectorIndex) {
    assert_eq!(got.n_metagraphs(), want.n_metagraphs());
    assert_eq!(got.n_nodes(), want.n_nodes(), "node-vector table size");
    assert_eq!(got.n_pairs(), want.n_pairs(), "pair-vector table size");
    assert_eq!(
        got.iter_partners().count(),
        want.iter_partners().count(),
        "partner table size"
    );
    for (x, v) in want.iter_nodes() {
        assert_eq!(got.node_vec(x), v, "m_{x} diverged");
    }
    for (key, v) in want.iter_pairs() {
        let (x, y) = semantic_proximity::graph::ids::unpack_pair(key);
        assert_eq!(got.pair_vec(x, y), v, "m_{x},{y} diverged");
    }
    for (x, l) in want.iter_partners() {
        assert_eq!(got.partners(x), l, "partners of {x} diverged");
    }
    // No leaked empties on the churned side.
    assert!(got.iter_nodes().all(|(_, v)| !v.is_empty()));
    assert!(got.iter_pairs().all(|(_, v)| !v.is_empty()));
    assert!(got.iter_partners().all(|(_, l)| !l.is_empty()));
}

#[test]
fn churn_that_nets_to_zero_restores_everything_exactly() {
    let g0 = base_graph();
    let mut engine = SearchEngine::with_metagraphs(g0.clone(), catalogue(), pipeline_cfg());
    engine.train_class("c", &examples());
    let (coords, weights) = {
        let m = engine.model("c").unwrap();
        (m.coords.clone(), m.weights.clone())
    };
    let server = engine.serve_with(ServeConfig {
        workers: 2,
        shards: 3,
        cache_capacity: 64,
    });
    let cid = server.class_id("c").unwrap();

    // Baselines to restore.
    let counts0: Vec<AnchorCounts> = coords
        .iter()
        .map(|&i| engine.counts(i).unwrap().clone())
        .collect();
    let index0 = engine.model("c").unwrap().index.clone();
    let tables0 = server.table_stats(cid);

    // Delta 1: remove a third of the existing edges.
    let edges: Vec<(NodeId, NodeId)> = g0.edges().collect();
    let removed: Vec<(NodeId, NodeId)> = edges.iter().step_by(3).copied().collect();
    let mut d1 = GraphDelta::for_graph(engine.graph());
    for &(a, b) in &removed {
        d1.remove_edge(a, b).unwrap();
    }
    let r1 = engine.ingest_serving(&d1, &server).unwrap();
    assert_eq!(r1.removed_edges, removed.len());
    assert!(r1.doomed_instances > 0);
    // Fused replay touches each affected shard once, even when a delta
    // both patches postings and drops others in the same shard.
    assert!(
        r1.fused_shard_visits <= r1.sequential_shard_visits(),
        "fused visits {} exceed per-class sum {}",
        r1.fused_shard_visits,
        r1.sequential_shard_visits()
    );

    // Delta 2: re-add them.
    let mut d2 = GraphDelta::for_graph(engine.graph());
    for &(a, b) in &removed {
        d2.add_edge(a, b).unwrap();
    }
    engine.ingest_serving(&d2, &server).unwrap();

    // Delta 3: a fresh user with edges, plus brand-new edges among
    // existing nodes.
    let g_now = engine.graph().clone();
    let non_edges: Vec<(NodeId, NodeId)> = {
        let users: Vec<NodeId> = g_now.nodes_of_type(USER).to_vec();
        let mut found = Vec::new();
        'outer: for &u in &users {
            for &v in &users {
                if u < v && !g_now.has_edge(u, v) {
                    found.push((u, v));
                    if found.len() == 3 {
                        break 'outer;
                    }
                }
            }
        }
        found
    };
    let mut d3 = GraphDelta::for_graph(&g_now);
    let fresh = d3.add_node(USER, "fresh");
    d3.add_edge(fresh, NodeId(10)).unwrap(); // first `a` attribute
    d3.add_edge(fresh, NodeId(0)).unwrap();
    for &(a, b) in &non_edges {
        d3.add_edge(a, b).unwrap();
    }
    engine.ingest_serving(&d3, &server).unwrap();

    // Delta 4: undo delta 3 — detach the fresh node, drop the new edges.
    let mut d4 = GraphDelta::for_graph(engine.graph());
    d4.remove_node(fresh).unwrap();
    for &(a, b) in &non_edges {
        d4.remove_edge(a, b).unwrap();
    }
    engine.ingest_serving(&d4, &server).unwrap();

    // Delta 5 + 6: tombstone-detach a busy user, then re-wire it.
    let busy = NodeId(5);
    let former: Vec<NodeId> = engine.graph().neighbors(busy).to_vec();
    let mut d5 = GraphDelta::for_graph(engine.graph());
    d5.remove_node(busy).unwrap();
    let r5 = engine.ingest_serving(&d5, &server).unwrap();
    assert_eq!(r5.removed_edges, former.len());
    assert!(
        r5.fused_shard_visits <= r5.sequential_shard_visits(),
        "fused visits {} exceed per-class sum {}",
        r5.fused_shard_visits,
        r5.sequential_shard_visits()
    );
    let mut d6 = GraphDelta::for_graph(engine.graph());
    for &u in &former {
        d6.add_edge(busy, u).unwrap();
    }
    engine.ingest_serving(&d6, &server).unwrap();

    // --- everything must be exactly restored -------------------------

    // Graph: every original adjacency list (the fresh node survives as a
    // degree-0 tombstone; ids are never reused).
    assert_eq!(engine.graph().n_edges(), g0.n_edges());
    for v in g0.nodes() {
        assert_eq!(engine.graph().neighbors(v), g0.neighbors(v));
    }
    assert_eq!(engine.graph().degree(fresh), 0);

    // Matcher count caches: exact map equality — no zero-count leftovers.
    for (j, &i) in coords.iter().enumerate() {
        assert_eq!(engine.counts(i).unwrap(), &counts0[j], "counts of {i}");
        assert!(engine.counts(i).unwrap().per_node.values().all(|&c| c > 0));
        assert!(engine.counts(i).unwrap().per_pair.values().all(|&c| c > 0));
    }

    // Vector index: structurally identical, no empties.
    assert_index_identical(&engine.model("c").unwrap().index, &index0);

    // QueryServer tables: same footprint as before the churn, and the
    // same as a freshly registered server.
    assert_eq!(server.table_stats(cid), tables0);
    // With no reader pinning an old snapshot, every epoch the churn
    // retired has been released — no copy-on-write memory lingers.
    assert_eq!(
        server.epoch_stats(),
        semantic_proximity::online::EpochStats::default(),
        "settled churn must leave no retained epochs"
    );
    let fresh_server = engine.serve_with(ServeConfig {
        workers: 2,
        shards: 3,
        cache_capacity: 0,
    });
    assert_eq!(fresh_server.table_stats(cid), tables0);

    // Rankings: bit-identical to the pre-churn index for every node.
    for q in 0..engine.graph().n_nodes() as u32 {
        let q = NodeId(q);
        let want = mgp::rank_with_scores(&index0, q, &weights, 10);
        assert_eq!(engine.search("c", q, 10), want, "engine q={q}");
        assert_eq!(*server.rank(cid, q, 10), want, "server q={q}");
    }
}

/// Hub-heavy deletion storm: one anchor with ~10³ edges is detached in a
/// **single** delta (the worst case for posting-list patching — one op
/// dooms a thousand instances at once), then re-wired in a single delta.
/// Every derived table must come back exactly: counts, index, server
/// postings and dot tables, retained epochs — with no leaked empties.
/// The served class is a *runtime-registered* one, so the storm also
/// soaks the `register_class` path's index under heavy deletion.
#[test]
fn hub_deletion_storm_restores_tables_exactly() {
    const N_ATTRS: usize = 1000;
    const N_USERS: usize = 20;

    // A star: `hub` touches every attribute; each attribute also touches
    // one of 20 regular users. The user–A–user metapath therefore routes
    // every instance through the hub — degree(hub) = 1000.
    let mut gb = GraphBuilder::new();
    let user = gb.add_type("user");
    let ta = gb.add_type("a");
    let _tb = gb.add_type("b"); // keep the catalogue's TypeId layout
    let hub = gb.add_node(user, "hub");
    let users: Vec<NodeId> = (0..N_USERS)
        .map(|i| gb.add_node(user, format!("u{i}")))
        .collect();
    for i in 0..N_ATTRS {
        let a = gb.add_node(ta, format!("a{i}"));
        gb.add_edge(hub, a).unwrap();
        gb.add_edge(a, users[i % N_USERS]).unwrap();
    }
    let g0 = gb.build();
    assert_eq!(g0.degree(hub), N_ATTRS);

    let mut engine = SearchEngine::with_metagraphs(g0.clone(), catalogue(), pipeline_cfg());
    // No training pass: the class is registered at runtime over the full
    // catalogue with uniform weights.
    engine
        .register_class(&ClassSpec::new("hub-class", PatternSelect::All))
        .unwrap();
    let weights = engine.model("hub-class").unwrap().weights.clone();
    let coords = engine.model("hub-class").unwrap().coords.clone();
    let server = engine.serve_with(ServeConfig {
        workers: 2,
        shards: 4,
        cache_capacity: 64,
    });
    let cid = server.class_id("hub-class").unwrap();

    // Baselines to restore.
    let counts0: Vec<AnchorCounts> = coords
        .iter()
        .map(|&i| engine.counts(i).unwrap().clone())
        .collect();
    let index0 = engine.model("hub-class").unwrap().index.clone();
    let tables0 = server.table_stats(cid);
    assert!(tables0.n_postings > 0);

    // Warm the cache so the storm also exercises invalidation.
    let hot = mgp::rank_with_scores(&index0, hub, &weights, 10);
    assert_eq!(*server.rank(cid, hub, 10), hot);
    assert!(
        !hot.is_empty(),
        "the hub must rank partners before the storm"
    );

    // The storm: all 10³ hub edges removed by one tombstone-detach op in
    // one delta.
    let mut d1 = GraphDelta::for_graph(engine.graph());
    d1.remove_node(hub).unwrap();
    let r1 = engine.ingest_serving(&d1, &server).unwrap();
    assert_eq!(r1.removed_edges, N_ATTRS);
    assert!(
        r1.doomed_instances as usize >= N_ATTRS,
        "each hub edge carried at least one metapath instance, doomed {}",
        r1.doomed_instances
    );
    assert!(
        r1.fused_shard_visits <= r1.sequential_shard_visits(),
        "fused visits {} exceed per-class sum {}",
        r1.fused_shard_visits,
        r1.sequential_shard_visits()
    );
    // The hub fell out of the metapath count cache entirely — no
    // zero-count tombstone left behind.
    assert!(!engine
        .counts(coords[0])
        .unwrap()
        .per_node
        .contains_key(&hub.0));
    assert!(
        server.rank(cid, hub, 10).is_empty(),
        "detached hub still ranks"
    );

    // Recovery: re-wire every hub edge in one delta.
    let mut d2 = GraphDelta::for_graph(engine.graph());
    for a in g0.neighbors(hub) {
        d2.add_edge(hub, *a).unwrap();
    }
    let r2 = engine.ingest_serving(&d2, &server).unwrap();
    assert_eq!(r2.new_edges, N_ATTRS);

    // --- exact restoration -------------------------------------------
    assert_eq!(engine.graph().n_edges(), g0.n_edges());
    assert_eq!(engine.graph().neighbors(hub), g0.neighbors(hub));
    for (j, &i) in coords.iter().enumerate() {
        assert_eq!(engine.counts(i).unwrap(), &counts0[j], "counts of {i}");
        assert!(engine.counts(i).unwrap().per_node.values().all(|&c| c > 0));
        assert!(engine.counts(i).unwrap().per_pair.values().all(|&c| c > 0));
    }
    assert_index_identical(&engine.model("hub-class").unwrap().index, &index0);
    assert_eq!(server.table_stats(cid), tables0);
    assert_eq!(
        server.epoch_stats(),
        semantic_proximity::online::EpochStats::default(),
        "settled storm must leave no retained epochs"
    );

    // Rankings: the hub and a user from every residue class answer
    // bit-identically to the pre-storm index.
    for &q in [hub].iter().chain(users.iter()) {
        let want = mgp::rank_with_scores(&index0, q, &weights, 10);
        assert_eq!(engine.search("hub-class", q, 10), want, "engine q={q}");
        assert_eq!(*server.rank(cid, q, 10), want, "server q={q}");
    }
}

//! Incremental-equivalence property: for arbitrary churn sequences —
//! edge insertions *and* removals, node additions *and* tombstone
//! detaches, interleaved — `SearchEngine::ingest` +
//! `QueryServer::apply_delta` must produce rankings **bit-identical** to
//! a from-scratch rematch + rebuild of the updated graph with the same
//! trained weights — the same equivalence bar PR 1 set for serving-time
//! precomputation.
//!
//! Each case draws a random typed base graph, trains one class over a
//! fixed pattern catalogue, then streams several random churn batches
//! through the delta pipeline. After every batch, every anchor's top-k is
//! compared against the rebuilt reference — engine search path and cached
//! batched server path both.

use proptest::prelude::*;
use semantic_proximity::engine::{PipelineConfig, SearchEngine, TrainingStrategy};
use semantic_proximity::graph::delta::GraphDelta;
use semantic_proximity::graph::{Graph, GraphBuilder, NodeId, TypeId};
use semantic_proximity::index::{Transform, VectorIndex};
use semantic_proximity::learning::{mgp, TrainConfig, TrainingExample};
use semantic_proximity::matching::AnchorCounts;
use semantic_proximity::metagraph::Metagraph;
use semantic_proximity::online::ServeConfig;

const USER: TypeId = TypeId(0);
const A: TypeId = TypeId(1);
const B: TypeId = TypeId(2);

fn base_graph(n_users: usize, n_a: usize, n_b: usize, edges: &[(usize, usize)]) -> Graph {
    let mut g = GraphBuilder::new();
    let user = g.add_type("user");
    let ta = g.add_type("a");
    let tb = g.add_type("b");
    let mut nodes = Vec::new();
    for i in 0..n_users {
        nodes.push(g.add_node(user, format!("u{i}")));
    }
    for i in 0..n_a {
        nodes.push(g.add_node(ta, format!("a{i}")));
    }
    for i in 0..n_b {
        nodes.push(g.add_node(tb, format!("b{i}")));
    }
    for &(x, y) in edges {
        let (x, y) = (x % nodes.len(), y % nodes.len());
        if x != y {
            g.add_edge(nodes[x], nodes[y]).unwrap();
        }
    }
    g.build()
}

/// Patterns with shared-attribute joints, chains and a 4-clique-ish
/// shape — all anchored on `user`.
fn catalogue() -> Vec<Metagraph> {
    vec![
        Metagraph::from_edges(&[USER, A, USER], &[(0, 1), (1, 2)]).unwrap(),
        Metagraph::from_edges(&[USER, B, USER], &[(0, 1), (1, 2)]).unwrap(),
        Metagraph::from_edges(&[USER, A, B, USER], &[(0, 1), (3, 1), (0, 2), (3, 2)]).unwrap(),
        Metagraph::from_edges(&[USER, A, USER, B, USER], &[(0, 1), (1, 2), (2, 3), (3, 4)])
            .unwrap(),
        Metagraph::from_edges(&[USER, USER, USER], &[(0, 1), (1, 2), (0, 2)]).unwrap(),
    ]
}

fn pipeline_cfg() -> PipelineConfig {
    let mut cfg = PipelineConfig::new(USER, 1);
    cfg.train = TrainConfig::fast(7);
    cfg.strategy = TrainingStrategy::Full;
    cfg.threads = 1;
    cfg
}

/// A handful of deterministic training triples over the user nodes —
/// enough for `train_class` to produce a well-defined weight vector (its
/// quality is irrelevant here; equivalence is about *identical* output).
fn examples(n_users: usize) -> Vec<TrainingExample> {
    (0..n_users.min(8))
        .map(|i| TrainingExample {
            q: NodeId(i as u32),
            x: NodeId(((i + 1) % n_users) as u32),
            y: NodeId(((i + 2) % n_users) as u32),
        })
        .collect()
}

/// Rebuilds the class index from scratch on `engine`'s current graph
/// (full rematch of the same pattern set) for comparison.
fn rebuilt_index(engine: &SearchEngine, coords: &[usize]) -> VectorIndex {
    let fresh = SearchEngine::with_metagraphs(
        engine.graph().clone(),
        engine.metagraphs().to_vec(),
        pipeline_cfg(),
    );
    let counts: Vec<AnchorCounts> = coords
        .iter()
        .map(|&i| fresh.counts(i).unwrap().clone())
        .collect();
    VectorIndex::from_counts(&counts, Transform::Log1p)
}

/// Per-class training triples that differ per class (distinct weight
/// vectors), deterministically derived from a salt.
fn salted_examples(n_users: usize, salt: usize) -> Vec<TrainingExample> {
    (0..n_users.min(8))
        .map(|i| TrainingExample {
            q: NodeId(((i + salt) % n_users) as u32),
            x: NodeId(((i + salt + 1) % n_users) as u32),
            y: NodeId(((i + 2 * salt + 2) % n_users) as u32),
        })
        .collect()
}

/// Decodes one `(x, y, kind)` churn op into `delta` against the state
/// described by `edges_now` / `n_now` (shared by the fused and per-class
/// proptests so both build identical batches).
fn push_churn_op(
    delta: &mut GraphDelta,
    edges_now: &[(NodeId, NodeId)],
    n_base: usize,
    n_now: &mut usize,
    (x, y, kind): (usize, usize, u8),
) {
    match kind {
        // Insert an edge among existing nodes.
        0 => {
            let a = NodeId((x % *n_now) as u32);
            let b = NodeId((y % *n_now) as u32);
            if a != b {
                delta.add_edge(a, b).unwrap();
            }
        }
        // Insert an edge through a freshly added node.
        1 => {
            let a = NodeId((x % *n_now) as u32);
            let ty = [USER, A, B][y % 3];
            *n_now += 1;
            let b = delta.add_node(ty, format!("fresh{n_now}"));
            delta.add_edge(a, b).unwrap();
        }
        // Remove an existing edge (duplicates tolerated).
        2 if !edges_now.is_empty() => {
            let (a, b) = edges_now[x % edges_now.len()];
            delta.remove_edge(a, b).unwrap();
        }
        // Tombstone-detach a base node.
        3 => {
            delta.remove_node(NodeId((x % n_base) as u32)).unwrap();
        }
        _ => {}
    }
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(12))]

    #[test]
    fn delta_updates_are_bit_identical_to_full_rebuild(
        n_users in 6usize..12,
        n_a in 2usize..5,
        n_b in 2usize..5,
        base_edges in prop::collection::vec((0usize..100, 0usize..100), 10..40),
        batches in prop::collection::vec(
            prop::collection::vec((0usize..100, 0usize..100, any::<bool>()), 1..5),
            1..4,
        ),
    ) {
        let g = base_graph(n_users, n_a, n_b, &base_edges);
        let mut engine = SearchEngine::with_metagraphs(g, catalogue(), pipeline_cfg());
        engine.train_class("c", &examples(n_users));
        let (coords, weights) = {
            let m = engine.model("c").unwrap();
            (m.coords.clone(), m.weights.clone())
        };
        let server = engine.serve_with(ServeConfig {
            workers: 2,
            shards: 3,
            cache_capacity: 64,
        });
        let cid = server.class_id("c").unwrap();

        for batch in batches {
            // Build a random insertion batch against the current graph:
            // each triple is an edge (skipped when degenerate); `true`
            // flags route one endpoint through a freshly added node.
            let g_now = engine.graph().clone();
            let mut delta = GraphDelta::for_graph(&g_now);
            let mut n_now = g_now.n_nodes();
            for (x, y, fresh_node) in batch {
                let a = NodeId((x % n_now) as u32);
                let b = if fresh_node {
                    let ty = [USER, A, B][y % 3];
                    n_now += 1;
                    delta.add_node(ty, format!("fresh{n_now}"))
                } else {
                    NodeId((y % n_now) as u32)
                };
                if a != b {
                    delta.add_edge(a, b).unwrap();
                }
            }
            engine.ingest_serving(&delta, &server).unwrap();

            // Reference: full rematch + rebuild, same weights.
            let fresh_idx = rebuilt_index(&engine, &coords);
            let n_nodes = engine.graph().n_nodes() as u32;
            for q in 0..n_nodes {
                let q = NodeId(q);
                for k in [3usize, 10] {
                    let want = mgp::rank_with_scores(&fresh_idx, q, &weights, k);
                    prop_assert_eq!(
                        &engine.search("c", q, k), &want,
                        "engine diverged at q={} k={}", q, k
                    );
                    prop_assert_eq!(
                        &*server.rank(cid, q, k), &want,
                        "server diverged at q={} k={}", q, k
                    );
                }
            }
            // Batched path over every anchor agrees too (and exercises
            // the generation-stamped cache after invalidation).
            let all: Vec<NodeId> = (0..n_nodes).map(NodeId).collect();
            let ranked = server.rank_batch(cid, &all, 5);
            for (q, got) in all.iter().zip(&ranked) {
                let want = mgp::rank_with_scores(&fresh_idx, *q, &weights, 5);
                prop_assert_eq!(&**got, &want, "batched server diverged at q={}", q);
            }
        }
    }

    /// The tentpole property: random *interleaved* insert/delete
    /// sequences stay bit-identical to a full rematch + rebuild. Each op
    /// is decoded from `(x, y, kind)`: insert an edge among existing
    /// nodes, insert an edge through a fresh node, remove an existing
    /// edge, or tombstone-detach a node.
    #[test]
    fn interleaved_insert_delete_equivalence(
        n_users in 6usize..12,
        n_a in 2usize..5,
        n_b in 2usize..5,
        base_edges in prop::collection::vec((0usize..100, 0usize..100), 15..40),
        batches in prop::collection::vec(
            prop::collection::vec((0usize..1000, 0usize..1000, 0u8..4), 1..6),
            1..4,
        ),
    ) {
        let g = base_graph(n_users, n_a, n_b, &base_edges);
        let mut engine = SearchEngine::with_metagraphs(g, catalogue(), pipeline_cfg());
        engine.train_class("c", &examples(n_users));
        let (coords, weights) = {
            let m = engine.model("c").unwrap();
            (m.coords.clone(), m.weights.clone())
        };
        let server = engine.serve_with(ServeConfig {
            workers: 2,
            shards: 3,
            cache_capacity: 64,
        });
        let cid = server.class_id("c").unwrap();

        for batch in batches {
            let g_now = engine.graph().clone();
            let edges_now: Vec<(NodeId, NodeId)> = g_now.edges().collect();
            let mut delta = GraphDelta::for_graph(&g_now);
            let mut n_now = g_now.n_nodes();
            for (x, y, kind) in batch {
                match kind {
                    // Insert an edge among existing nodes.
                    0 => {
                        let a = NodeId((x % n_now) as u32);
                        let b = NodeId((y % n_now) as u32);
                        if a != b {
                            delta.add_edge(a, b).unwrap();
                        }
                    }
                    // Insert an edge through a freshly added node.
                    1 => {
                        let a = NodeId((x % n_now) as u32);
                        let ty = [USER, A, B][y % 3];
                        n_now += 1;
                        let b = delta.add_node(ty, format!("fresh{n_now}"));
                        delta.add_edge(a, b).unwrap();
                    }
                    // Remove an existing edge (possibly already removed
                    // in this batch — duplicates are tolerated).
                    2 if !edges_now.is_empty() => {
                        let (a, b) = edges_now[x % edges_now.len()];
                        delta.remove_edge(a, b).unwrap();
                    }
                    // Tombstone-detach a base node.
                    3 => {
                        delta.remove_node(NodeId((x % g_now.n_nodes()) as u32)).unwrap();
                    }
                    _ => {}
                }
            }
            engine.ingest_serving(&delta, &server).unwrap();

            // Reference: full rematch + rebuild, same weights.
            let fresh_idx = rebuilt_index(&engine, &coords);
            let n_nodes = engine.graph().n_nodes() as u32;
            for q in 0..n_nodes {
                let q = NodeId(q);
                for k in [3usize, 10] {
                    let want = mgp::rank_with_scores(&fresh_idx, q, &weights, k);
                    prop_assert_eq!(
                        &engine.search("c", q, k), &want,
                        "engine diverged at q={} k={}", q, k
                    );
                    prop_assert_eq!(
                        &*server.rank(cid, q, k), &want,
                        "server diverged at q={} k={}", q, k
                    );
                }
            }
            // Batched path over every anchor agrees too.
            let all: Vec<NodeId> = (0..n_nodes).map(NodeId).collect();
            let ranked = server.rank_batch(cid, &all, 5);
            for (q, got) in all.iter().zip(&ranked) {
                let want = mgp::rank_with_scores(&fresh_idx, *q, &weights, 5);
                prop_assert_eq!(&**got, &want, "batched server diverged at q={}", q);
            }
        }
    }

    /// Multi-class fusion equivalence: one engine serving **three**
    /// classes through the fused chain (one matching pass →
    /// `IndexDeltaBatch` fan-out → `apply_delta_fused` → `rank_multi`)
    /// must answer bit-identically to three per-class silos — separate
    /// engines, separate servers, per-class `ingest_serving` and `rank`
    /// — and to a from-scratch rematch + rebuild, across random
    /// interleaved insert/delete batches.
    #[test]
    fn fused_multiclass_equals_per_class_pipelines(
        n_users in 6usize..11,
        n_a in 2usize..5,
        n_b in 2usize..5,
        base_edges in prop::collection::vec((0usize..100, 0usize..100), 15..35),
        batches in prop::collection::vec(
            prop::collection::vec((0usize..1000, 0usize..1000, 0u8..4), 1..5),
            1..3,
        ),
    ) {
        const CLASSES: [&str; 3] = ["c0", "c1", "c2"];
        let g = base_graph(n_users, n_a, n_b, &base_edges);
        let serve_cfg = || ServeConfig { workers: 2, shards: 3, cache_capacity: 64 };

        // Fused side: one engine, all three classes, one server.
        let mut fused = SearchEngine::with_metagraphs(g.clone(), catalogue(), pipeline_cfg());
        for (salt, name) in CLASSES.iter().enumerate() {
            fused.train_class(name, &salted_examples(n_users, 3 * salt + 1));
        }
        let fused_server = fused.serve_with(serve_cfg());
        let cids: Vec<usize> = CLASSES
            .iter()
            .map(|n| fused_server.class_id(n).unwrap())
            .collect();

        // Per-class silos: each engine trains and serves only its class
        // (training is deterministic, so weights match the fused side).
        let mut silos: Vec<(SearchEngine, semantic_proximity::online::QueryServer)> = CLASSES
            .iter()
            .enumerate()
            .map(|(salt, name)| {
                let mut e =
                    SearchEngine::with_metagraphs(g.clone(), catalogue(), pipeline_cfg());
                e.train_class(name, &salted_examples(n_users, 3 * salt + 1));
                let s = e.serve_with(serve_cfg());
                (e, s)
            })
            .collect();
        for (name, (silo, _)) in CLASSES.iter().zip(&silos) {
            prop_assert_eq!(
                &fused.model(name).unwrap().weights,
                &silo.model(name).unwrap().weights,
                "training must be deterministic for the comparison to mean anything"
            );
        }

        for batch in batches {
            // One identical churn batch for every pipeline, decoded
            // against the (identical) current graph state.
            let g_now = fused.graph().clone();
            let edges_now: Vec<(NodeId, NodeId)> = g_now.edges().collect();
            let n_base = g_now.n_nodes();
            let mut deltas: Vec<GraphDelta> = (0..=silos.len())
                .map(|_| GraphDelta::for_graph(&g_now))
                .collect();
            let mut n_nows = vec![n_base; deltas.len()];
            for &op in &batch {
                for (d, n_now) in deltas.iter_mut().zip(n_nows.iter_mut()) {
                    push_churn_op(d, &edges_now, n_base, n_now, op);
                }
            }
            let fused_delta = deltas.pop().unwrap();
            let report = fused.ingest_serving(&fused_delta, &fused_server).unwrap();
            prop_assert!(
                report.fused_shard_visits <= report.sequential_shard_visits(),
                "fused visits {} exceed the per-class product {}",
                report.fused_shard_visits, report.sequential_shard_visits()
            );
            for ((silo, server), d) in silos.iter_mut().zip(deltas) {
                silo.ingest_serving(&d, server).unwrap();
            }

            // Reference per class: full rematch + rebuild, same weights
            // (one rebuild per class per batch, shared by all queries).
            let references: Vec<(VectorIndex, Vec<f64>)> = CLASSES
                .iter()
                .zip(&silos)
                .map(|(name, (silo, _))| {
                    let model = silo.model(name).unwrap();
                    (
                        rebuilt_index(silo, &model.coords),
                        model.weights.clone(),
                    )
                })
                .collect();

            // Every anchor, every k: the fused multi-class walk equals
            // each silo's single-class answer and the full rebuild.
            let n_nodes = fused.graph().n_nodes() as u32;
            for q in 0..n_nodes {
                let q = NodeId(q);
                for k in [3usize, 10] {
                    let multi = fused_server.rank_multi(&cids, q, k);
                    for (((name, (_, server)), (rebuilt, weights)), (j, &cid)) in CLASSES
                        .iter()
                        .zip(&silos)
                        .zip(&references)
                        .zip(cids.iter().enumerate())
                    {
                        let want = mgp::rank_with_scores(rebuilt, q, weights, k);
                        prop_assert_eq!(
                            &*multi[j], &want,
                            "fused rank_multi diverged: class {} q={} k={}", name, q, k
                        );
                        let silo_cid = server.class_id(name).unwrap();
                        prop_assert_eq!(
                            &*server.rank(silo_cid, q, k), &want,
                            "silo diverged: class {} q={} k={}", name, q, k
                        );
                        prop_assert_eq!(
                            &*fused_server.rank(cid, q, k), &want,
                            "fused single-class rank diverged: class {} q={} k={}", name, q, k
                        );
                    }
                }
            }
            // The fused batch path agrees as well.
            let all: Vec<NodeId> = (0..n_nodes).map(NodeId).collect();
            let grid = fused_server.rank_multi_batch(&cids, &all, 5);
            for (q, row) in all.iter().zip(&grid) {
                let single = fused_server.rank_multi(&cids, *q, 5);
                for (j, got) in row.iter().enumerate() {
                    prop_assert_eq!(&**got, &*single[j], "batched multi diverged at q={}", q);
                }
            }
        }
    }
}

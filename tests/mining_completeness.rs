//! Mining vs exhaustive enumeration: the miner must find exactly the
//! frequent subset of all admissible patterns.

use semantic_proximity::graph::{GraphBuilder, TypeId};
use semantic_proximity::matching::PatternInfo;
use semantic_proximity::metagraph::{enumerate_proximity_patterns, CanonicalCode};
use semantic_proximity::mining::{mine, mni_support, MinerConfig, SupportOutcome};
use std::collections::BTreeSet;

const USER: TypeId = TypeId(0);

/// A dense campus where many patterns are frequent.
fn campus() -> semantic_proximity::graph::Graph {
    let mut b = GraphBuilder::new();
    let user = b.add_type("user");
    let school = b.add_type("school");
    let major = b.add_type("major");
    for k in 0..4 {
        let s = b.add_node(school, format!("s{k}"));
        let mj = b.add_node(major, format!("m{k}"));
        let mj2 = b.add_node(major, format!("m{k}b"));
        for i in 0..5 {
            let u = b.add_node(user, format!("u{k}{i}"));
            b.add_edge(u, s).unwrap();
            b.add_edge(u, if i % 2 == 0 { mj } else { mj2 }).unwrap();
        }
    }
    b.build()
}

#[test]
fn miner_agrees_with_enumeration_up_to_4_nodes() {
    let g = campus();
    let mut cfg = MinerConfig::paper_defaults(USER, 3);
    cfg.max_nodes = 4;
    cfg.max_patterns = None;
    let mined: BTreeSet<CanonicalCode> = mine(&g, &cfg)
        .into_iter()
        .map(|m| CanonicalCode::of(&m.metagraph))
        .collect();

    // Ground truth: every admissible pattern whose MNI support ≥ 3.
    let types: Vec<TypeId> = (0..3).map(|t| TypeId(t as u16)).collect();
    let all = enumerate_proximity_patterns(&types, 4, USER, 2);
    assert!(!all.is_empty());
    let mut expected = BTreeSet::new();
    for m in all {
        let p = PatternInfo::new(m.clone(), USER);
        if matches!(mni_support(&g, &p, 3, 10_000_000), SupportOutcome::Frequent) {
            expected.insert(CanonicalCode::of(&m));
        }
    }

    assert!(!expected.is_empty());
    // The miner may not *grow through* infrequent intermediate patterns
    // that would unlock frequent supergraphs (standard apriori behaviour
    // with MNI this cannot happen: MNI is anti-monotone, so every subgraph
    // of a frequent pattern is frequent). Hence exact agreement:
    assert_eq!(
        mined,
        expected,
        "mined {} vs expected {}",
        mined.len(),
        expected.len()
    );
}

#[test]
fn enumeration_is_superset_of_mining_at_5_nodes() {
    let g = campus();
    let mut cfg = MinerConfig::paper_defaults(USER, 3);
    cfg.max_patterns = None;
    let mined = mine(&g, &cfg);
    let types: Vec<TypeId> = (0..3).map(|t| TypeId(t as u16)).collect();
    let all: BTreeSet<CanonicalCode> = enumerate_proximity_patterns(&types, 5, USER, 2)
        .into_iter()
        .map(|m| CanonicalCode::of(&m))
        .collect();
    for m in &mined {
        assert!(
            all.contains(&CanonicalCode::of(&m.metagraph)),
            "mined pattern not in enumeration: {}",
            m.metagraph.brief()
        );
    }
}

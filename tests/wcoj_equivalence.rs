//! Differential property for the wcoj delta matcher: for arbitrary
//! typed base graphs and random **mixed insert/delete** batches —
//! including hub builds and hub drops — `wcoj_count_changes` must
//! produce `CountDelta`s **bit-identical** to the seeded backtracking
//! oracle (`delta_count_changes`), and applying them to the pre-batch
//! counts must equal a full SymISO rematch of the post-batch graph.
//!
//! The pattern set covers both the engine's *built-in* proximity
//! catalogue (`enumerate_proximity_patterns`, the shapes `PatternSelect::
//! Seeds`/`All` serve) and *Custom* hand-built shapes — triangle-dense
//! ones in particular, because triangles are where anchor-ownership
//! dedup earns its keep: one changed edge closes many instances that
//! also contain other changed edges, and every such instance must be
//! attributed exactly once.
//!
//! Plans are compiled **once against the base graph** and reused across
//! every batch, like the engine's per-pattern plan cache: the
//! statistics-informed level order may go stale as the graph churns,
//! and the counts must not care.

use proptest::prelude::*;
use semantic_proximity::graph::delta::GraphDelta;
use semantic_proximity::graph::{Graph, GraphBuilder, NodeId, TypeId};
use semantic_proximity::matching::anchor::{anchor_counts, AnchorCounts};
use semantic_proximity::matching::{
    delta_count_changes, wcoj_count_changes, ExtensionPlan, MatchDelta, PatternInfo, SymIso,
};
use semantic_proximity::metagraph::{enumerate_proximity_patterns, Metagraph};

const USER: TypeId = TypeId(0);
const A: TypeId = TypeId(1);
const B: TypeId = TypeId(2);

fn base_graph(n_users: usize, n_a: usize, n_b: usize, edges: &[(usize, usize)]) -> Graph {
    let mut g = GraphBuilder::new();
    let user = g.add_type("user");
    let ta = g.add_type("a");
    let tb = g.add_type("b");
    let mut nodes = Vec::new();
    for i in 0..n_users {
        nodes.push(g.add_node(user, format!("u{i}")));
    }
    for i in 0..n_a {
        nodes.push(g.add_node(ta, format!("a{i}")));
    }
    for i in 0..n_b {
        nodes.push(g.add_node(tb, format!("b{i}")));
    }
    for &(x, y) in edges {
        let (x, y) = (x % nodes.len(), y % nodes.len());
        if x != y {
            g.add_edge(nodes[x], nodes[y]).unwrap();
        }
    }
    g.build()
}

/// Built-in proximity shapes over `{user, a}` (every pattern the
/// engine's seed enumeration would serve at ≤ 3 nodes) plus Custom
/// triangle-dense shapes: a user triangle, a user 4-clique, a
/// triangle through a shared attribute, and the double-joint diamond.
fn catalogue() -> Vec<PatternInfo> {
    let mut shapes = enumerate_proximity_patterns(&[USER, A], 3, USER, 2);
    shapes.extend([
        Metagraph::from_edges(&[USER, USER, USER], &[(0, 1), (1, 2), (0, 2)]).unwrap(),
        Metagraph::from_edges(
            &[USER, USER, USER, USER],
            &[(0, 1), (0, 2), (0, 3), (1, 2), (1, 3), (2, 3)],
        )
        .unwrap(),
        Metagraph::from_edges(&[USER, A, USER], &[(0, 1), (1, 2), (0, 2)]).unwrap(),
        Metagraph::from_edges(&[USER, A, B, USER], &[(0, 1), (3, 1), (0, 2), (3, 2)]).unwrap(),
    ]);
    shapes
        .into_iter()
        .map(|m| PatternInfo::new(m, USER))
        .collect()
}

/// Full-rematch reference counts via the SymISO matcher.
fn rematch(g: &Graph, p: &PatternInfo) -> AnchorCounts {
    anchor_counts(&SymIso::new(), g, p)
}

/// Asserts one batch's wcoj output against both references and returns
/// the post-batch rematch counts (the next batch's baseline).
fn check_batch(
    g_pre: &Graph,
    delta: &GraphDelta,
    pats: &[PatternInfo],
    plans: &[ExtensionPlan],
    baselines: &mut [AnchorCounts],
) -> Graph {
    let ext = g_pre.apply_delta(delta).unwrap();
    for ((p, plan), base) in pats.iter().zip(plans).zip(baselines.iter_mut()) {
        let oracle: MatchDelta = delta_count_changes(
            g_pre,
            &ext.graph,
            p,
            &ext.removed_edges,
            &ext.new_edges,
            &ext.new_nodes,
        );
        let (got, stats) = wcoj_count_changes(
            g_pre,
            &ext.graph,
            p,
            plan,
            &ext.removed_edges,
            &ext.new_edges,
            &ext.new_nodes,
        );
        // Bit-identical to the seeded backtracking oracle.
        prop_assert_eq!(
            &got.changes,
            &oracle.changes,
            "wcoj CountDelta diverged from the seeded oracle on {}",
            p.metagraph.brief()
        );
        prop_assert_eq!(got.new_instances, oracle.new_instances);
        prop_assert_eq!(got.doomed_instances, oracle.doomed_instances);
        prop_assert_eq!(
            stats.instances,
            got.new_instances + got.doomed_instances,
            "MatchStats must count what the delta attributes"
        );
        // Bit-identical to a full rematch once applied to the baseline.
        let mut merged = base.clone();
        got.changes.apply_to(&mut merged);
        let fresh = rematch(&ext.graph, p);
        prop_assert_eq!(
            merged,
            fresh.clone(),
            "baseline + wcoj delta diverged from full rematch on {}",
            p.metagraph.brief()
        );
        *base = fresh;
    }
    ext.graph
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(16))]

    /// Random interleaved insert/delete batches: every op is decoded
    /// from `(x, y, kind)` — insert an edge among existing nodes,
    /// insert an edge through a fresh node, remove an existing edge
    /// (duplicates tolerated), or tombstone-detach a node.
    #[test]
    fn mixed_churn_is_bit_identical(
        n_users in 5usize..10,
        n_a in 2usize..5,
        n_b in 2usize..4,
        base_edges in prop::collection::vec((0usize..100, 0usize..100), 10..40),
        batches in prop::collection::vec(
            prop::collection::vec((0usize..1000, 0usize..1000, 0u8..4), 1..8),
            1..4,
        ),
    ) {
        let mut g = base_graph(n_users, n_a, n_b, &base_edges);
        let pats = catalogue();
        // Compile once on the base graph, reuse across batches — the
        // engine's plan cache does the same, so stale statistics must
        // never change the counts.
        let plans: Vec<ExtensionPlan> =
            pats.iter().map(|p| ExtensionPlan::compile(p, &g)).collect();
        let mut baselines: Vec<AnchorCounts> =
            pats.iter().map(|p| rematch(&g, p)).collect();

        for batch in batches {
            let edges_now: Vec<(NodeId, NodeId)> = g.edges().collect();
            let mut delta = GraphDelta::for_graph(&g);
            let mut n_now = g.n_nodes();
            for (x, y, kind) in batch {
                match kind {
                    0 => {
                        let a = NodeId((x % n_now) as u32);
                        let b = NodeId((y % n_now) as u32);
                        if a != b {
                            delta.add_edge(a, b).unwrap();
                        }
                    }
                    1 => {
                        let a = NodeId((x % n_now) as u32);
                        let ty = [USER, A, B][y % 3];
                        n_now += 1;
                        let b = delta.add_node(ty, format!("fresh{n_now}"));
                        delta.add_edge(a, b).unwrap();
                    }
                    2 if !edges_now.is_empty() => {
                        let (a, b) = edges_now[x % edges_now.len()];
                        delta.remove_edge(a, b).unwrap();
                    }
                    3 => {
                        delta.remove_node(NodeId((x % g.n_nodes()) as u32)).unwrap();
                    }
                    _ => {}
                }
            }
            g = check_batch(&g, &delta, &pats, &plans, &mut baselines);
        }
    }

    /// Hub storms: one delta builds a hub (a fresh attribute node wired
    /// to `hub_degree` users at once — many changed edges sharing an
    /// endpoint, the anchor-ownership stress case), a later delta drops
    /// it via node removal. Both must stay bit-identical, as must the
    /// single-edge trickles in between.
    #[test]
    fn hub_build_and_drop_are_bit_identical(
        n_users in 8usize..16,
        n_a in 2usize..4,
        base_edges in prop::collection::vec((0usize..100, 0usize..100), 10..30),
        hub_degree in 4usize..12,
        trickle in prop::collection::vec((0usize..1000, 0usize..1000), 0..4),
    ) {
        let mut g = base_graph(n_users, n_a, 2, &base_edges);
        let pats = catalogue();
        let plans: Vec<ExtensionPlan> =
            pats.iter().map(|p| ExtensionPlan::compile(p, &g)).collect();
        let mut baselines: Vec<AnchorCounts> =
            pats.iter().map(|p| rematch(&g, p)).collect();

        // Build the hub in one delta.
        let mut build = GraphDelta::for_graph(&g);
        let hub = build.add_node(A, "hub");
        for i in 0..hub_degree.min(n_users) {
            build.add_edge(hub, NodeId(i as u32)).unwrap();
        }
        g = check_batch(&g, &build, &pats, &plans, &mut baselines);
        let hub = NodeId((g.n_nodes() - 1) as u32);

        // Trickle single-edge deltas over the hubbed graph.
        for (x, y) in trickle {
            let mut d = GraphDelta::for_graph(&g);
            let a = NodeId((x % g.n_nodes()) as u32);
            let b = NodeId((y % g.n_nodes()) as u32);
            if a == b {
                continue;
            }
            d.add_edge(a, b).unwrap();
            g = check_batch(&g, &d, &pats, &plans, &mut baselines);
        }

        // Drop the whole hub in one delta.
        let mut drop = GraphDelta::for_graph(&g);
        drop.remove_node(hub).unwrap();
        g = check_batch(&g, &drop, &pats, &plans, &mut baselines);
        prop_assert!(g.neighbors(hub).is_empty(), "hub must be detached");
    }
}

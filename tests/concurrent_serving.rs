//! Torn-read race test for the epoch-swapped serving tables.
//!
//! `QueryServer::apply_delta` swaps shards one at a time, so while a
//! delta is in flight different *queries* may observe different epochs —
//! but any single query must observe its shard either entirely pre-delta
//! or entirely post-delta. This test races `rank_batch` readers against a
//! writer toggling a delta forward and backward, and asserts every
//! returned ranking is **bit-identical** to one of the two full-rebuild
//! reference states — never a mix of the two (a torn posting list, or a
//! cached result served under the wrong generation, would both show up
//! here as a third state).

use semantic_proximity::graph::{ids::pack_pair, NodeId};
use semantic_proximity::index::{IndexDelta, Transform, VectorIndex};
use semantic_proximity::matching::AnchorCounts;
use semantic_proximity::online::{QueryServer, RankedList, ServeConfig};
use std::sync::atomic::{AtomicBool, Ordering};
use std::sync::Arc;

const N_ANCHORS: u32 = 120;
const TOP_K: usize = 5;
const ROUNDS: usize = 60;
const READERS: usize = 3;

/// A ring-plus-chords index over `N_ANCHORS` anchors: coordinate 0 links
/// each `i` to `i+1`, coordinate 1 links each `i` to `i+7` — every anchor
/// gets a handful of partners with distinct scores.
fn base_index() -> VectorIndex {
    let mut c0 = AnchorCounts::default();
    let mut c1 = AnchorCounts::default();
    let link = |c: &mut AnchorCounts, x: u32, y: u32, n: u64| {
        c.per_pair.insert(pack_pair(NodeId(x), NodeId(y)), n);
        *c.per_node.entry(x).or_insert(0) += n;
        *c.per_node.entry(y).or_insert(0) += n;
    };
    for i in 0..N_ANCHORS {
        link(&mut c0, i, (i + 1) % N_ANCHORS, 1 + u64::from(i % 5));
        link(&mut c1, i, (i + 7) % N_ANCHORS, 1 + u64::from(i % 3));
    }
    VectorIndex::from_counts(&[c0, c1], Transform::Log1p)
}

/// The delta under race: bump a spread of ring pairs (and their endpoint
/// node counts) by `sign` on coordinate 0 — it touches many shards, so a
/// mid-flight reader genuinely sees mixed epochs across queries.
fn toggle_delta(sign: i64) -> IndexDelta {
    let mut d = IndexDelta::empty(2);
    for j in 0..12u32 {
        let x = j * 10 % N_ANCHORS;
        let y = (x + 1) % N_ANCHORS;
        d.counts[0]
            .per_pair
            .insert(pack_pair(NodeId(x), NodeId(y)), 2 * sign);
        *d.counts[0].per_node.entry(x).or_insert(0) += 2 * sign;
        *d.counts[0].per_node.entry(y).or_insert(0) += 2 * sign;
    }
    d
}

/// Full-rebuild reference rankings for every anchor over `idx`.
fn reference_states(idx: &VectorIndex, weights: &[f64]) -> Vec<RankedList> {
    let mut fresh = QueryServer::new(ServeConfig {
        workers: 2,
        shards: 5,
        cache_capacity: 0,
    });
    fresh.add_class("ref", idx, weights);
    (0..N_ANCHORS)
        .map(|q| (*fresh.rank(0, NodeId(q), TOP_K)).clone())
        .collect()
}

#[test]
fn racing_rank_batch_never_observes_a_torn_ranking() {
    let weights = vec![0.6, 0.4];
    let mut idx = base_index();

    // State A: the base index. State B: after the forward delta.
    let state_a = reference_states(&idx, &weights);
    let mut idx_b = idx.clone();
    idx_b.apply_delta(&toggle_delta(1));
    let state_b = reference_states(&idx_b, &weights);
    assert_ne!(state_a, state_b, "the delta must actually change rankings");

    // The live server starts at state A; the cache is on so generation
    // stamping is exercised under the race too.
    let mut server = QueryServer::new(ServeConfig {
        workers: 2,
        shards: 5,
        cache_capacity: 512,
    });
    let cid = server.add_class("live", &idx, &weights);
    let server = Arc::new(server);

    let queries: Vec<NodeId> = (0..N_ANCHORS).map(NodeId).collect();
    let stop = AtomicBool::new(false);

    std::thread::scope(|s| {
        for _ in 0..READERS {
            s.spawn(|| {
                let mut batches = 0usize;
                while !stop.load(Ordering::Relaxed) {
                    let results = server.rank_batch(cid, &queries, TOP_K);
                    for (q, got) in results.iter().enumerate() {
                        let a = &state_a[q];
                        let b = &state_b[q];
                        assert!(
                            **got == *a || **got == *b,
                            "torn read at q={q}: got {got:?}, want pre {a:?} or post {b:?}"
                        );
                    }
                    batches += 1;
                }
                assert!(batches > 0, "reader never completed a batch");
            });
        }

        // Writer: toggle the delta forward and backward. Each apply
        // transitions the live tables A → B or B → A shard by shard while
        // the readers above keep ranking.
        for round in 0..ROUNDS {
            let sign = if round % 2 == 0 { 1 } else { -1 };
            let touch = idx.apply_delta(&toggle_delta(sign));
            let stats = server.apply_delta(cid, &idx, &touch);
            assert!(stats.swapped_shards > 0, "delta must swap shards");
            std::thread::yield_now();
        }
        stop.store(true, Ordering::Relaxed);
    });

    // ROUNDS is even, so the settled state is A again — exactly.
    for (q, want) in state_a.iter().enumerate() {
        assert_eq!(
            *server.rank(cid, NodeId(q as u32), TOP_K),
            *want,
            "settled state diverged at q={q}"
        );
    }
}

//! Cross-crate integration: the full offline + online pipeline.

use rand::SeedableRng;
use rand_chacha::ChaCha8Rng;
use semantic_proximity::datagen::facebook::{generate_facebook, FacebookConfig, CLASSMATE, FAMILY};
use semantic_proximity::datagen::toy::{toy_graph, toy_metagraphs};
use semantic_proximity::engine::{PipelineConfig, SearchEngine, TrainingStrategy};
use semantic_proximity::eval::{evaluate_ranker, repeated_splits};
use semantic_proximity::learning::{sample_examples, TrainingExample};

fn facebook_examples(
    d: &semantic_proximity::datagen::Dataset,
    class: semantic_proximity::datagen::ClassId,
    train: &[semantic_proximity::graph::NodeId],
    n: usize,
    seed: u64,
) -> Vec<TrainingExample> {
    let anchors: Vec<_> = d.graph.nodes_of_type(d.anchor_type).to_vec();
    let mut rng = ChaCha8Rng::seed_from_u64(seed);
    sample_examples(
        train,
        |q| d.labels.positives_of(q, class),
        |q, v| d.labels.has(q, v, class),
        &anchors,
        n,
        &mut rng,
    )
}

#[test]
fn toy_graph_classmate_search_end_to_end() {
    use semantic_proximity::index::{Transform, VectorIndex};
    use semantic_proximity::learning::{mgp, train, TrainConfig};
    use semantic_proximity::matching::{anchor::anchor_counts, PatternInfo, SymIso};

    let toy = toy_graph();
    let g = &toy.graph;
    let (m1, m2, m3, m4) = toy_metagraphs(g);
    let patterns: Vec<PatternInfo> = [m1, m2, m3, m4]
        .into_iter()
        .map(|m| PatternInfo::new(m, toy.user))
        .collect();
    let counts: Vec<_> = patterns
        .iter()
        .map(|p| anchor_counts(&SymIso::new(), g, p))
        .collect();
    let index = VectorIndex::from_counts(&counts, Transform::Raw);

    // Supervise "classmate": Kate→Jay above Alice; Bob→Tom above Alice.
    let kate = g.node_by_label("Kate").unwrap();
    let jay = g.node_by_label("Jay").unwrap();
    let alice = g.node_by_label("Alice").unwrap();
    let bob = g.node_by_label("Bob").unwrap();
    let tom = g.node_by_label("Tom").unwrap();
    let examples = vec![
        TrainingExample {
            q: kate,
            x: jay,
            y: alice,
        },
        TrainingExample {
            q: bob,
            x: tom,
            y: alice,
        },
    ];
    let model = train(&index, &examples, &TrainConfig::fast(1));

    // M1 (shared school+major) should dominate; ranking matches Fig. 1b.
    assert_eq!(mgp::rank(&index, kate, &model.weights, 1), vec![jay]);
    assert_eq!(mgp::rank(&index, bob, &model.weights, 1), vec![tom]);
}

#[test]
fn facebook_pipeline_beats_uniform_weights() {
    let d = generate_facebook(&FacebookConfig::tiny(33));
    let mut cfg = PipelineConfig::new(d.anchor_type, 5);
    cfg.train = semantic_proximity::learning::TrainConfig::fast(2);
    cfg.strategy = TrainingStrategy::Full;
    let mut engine = SearchEngine::build(d.graph.clone(), cfg);

    let queries = d.labels.queries_of_class(FAMILY);
    let split = &repeated_splits(&queries, 0.2, 1, 7)[0];
    let examples = facebook_examples(&d, FAMILY, &split.train, 300, 11);
    engine.train_class("family", &examples);

    let positives = |q| d.labels.positives_of(q, FAMILY);
    let (trained_ndcg, _) = evaluate_ranker(&split.test, 10, positives, |q| {
        engine
            .search("family", q, 10)
            .into_iter()
            .map(|(v, _)| v)
            .collect()
    });

    // Uniform weights over the same index.
    let model = engine.model("family").unwrap();
    let uniform = vec![1.0; model.index.n_metagraphs()];
    let (uniform_ndcg, _) = evaluate_ranker(&split.test, 10, positives, |q| {
        semantic_proximity::learning::mgp::rank(&model.index, q, &uniform, 10)
    });

    assert!(
        trained_ndcg > uniform_ndcg,
        "trained {trained_ndcg:.3} should beat uniform {uniform_ndcg:.3}"
    );
    assert!(
        trained_ndcg > 0.5,
        "absolute quality too low: {trained_ndcg:.3}"
    );
}

#[test]
fn classes_learn_different_weights() {
    let d = generate_facebook(&FacebookConfig::tiny(44));
    let mut cfg = PipelineConfig::new(d.anchor_type, 5);
    cfg.train = semantic_proximity::learning::TrainConfig::fast(3);
    let mut engine = SearchEngine::build(d.graph.clone(), cfg);

    for (name, class) in [("family", FAMILY), ("classmate", CLASSMATE)] {
        let queries = d.labels.queries_of_class(class);
        let split = &repeated_splits(&queries, 0.2, 1, 5)[0];
        let examples = facebook_examples(&d, class, &split.train, 300, 13);
        engine.train_class(name, &examples);
    }
    let fam = engine.model("family").unwrap().weights.clone();
    let cls = engine.model("classmate").unwrap().weights.clone();
    assert_eq!(fam.len(), cls.len());
    // The two classes must emphasise different metagraphs: cosine
    // similarity of the weight vectors stays well below 1.
    let dot: f64 = fam.iter().zip(&cls).map(|(a, b)| a * b).sum();
    let na: f64 = fam.iter().map(|a| a * a).sum::<f64>().sqrt();
    let nb: f64 = cls.iter().map(|b| b * b).sum::<f64>().sqrt();
    let cosine = dot / (na * nb).max(1e-12);
    assert!(
        cosine < 0.95,
        "weight vectors nearly identical: cos={cosine:.3}"
    );
}

#[test]
fn dual_stage_close_to_full_accuracy() {
    let d = generate_facebook(&FacebookConfig::tiny(55));
    let queries = d.labels.queries_of_class(CLASSMATE);
    let split = &repeated_splits(&queries, 0.2, 1, 3)[0];
    let examples = facebook_examples(&d, CLASSMATE, &split.train, 300, 17);
    let positives = |q| d.labels.positives_of(q, CLASSMATE);

    let run = |strategy| {
        let mut cfg = PipelineConfig::new(d.anchor_type, 5);
        cfg.train = semantic_proximity::learning::TrainConfig::fast(4);
        cfg.strategy = strategy;
        let mut engine = SearchEngine::build(d.graph.clone(), cfg);
        engine.train_class("classmate", &examples);
        let (ndcg, _) = evaluate_ranker(&split.test, 10, positives, |q| {
            engine
                .search("classmate", q, 10)
                .into_iter()
                .map(|(v, _)| v)
                .collect()
        });
        (ndcg, engine.timings().n_matched, engine.timings().n_mined)
    };

    let (full_ndcg, full_matched, mined) = run(TrainingStrategy::Full);
    let (dual_ndcg, dual_matched, _) = run(TrainingStrategy::DualStage { n_candidates: 10 });

    assert_eq!(full_matched, mined);
    assert!(
        dual_matched < full_matched / 2,
        "dual matched {dual_matched}/{full_matched}"
    );
    assert!(
        dual_ndcg > full_ndcg * 0.85,
        "dual-stage lost too much accuracy: {dual_ndcg:.3} vs {full_ndcg:.3}"
    );
}

#[test]
fn engine_is_deterministic() {
    let d = generate_facebook(&FacebookConfig::tiny(66));
    let examples = {
        let queries = d.labels.queries_of_class(FAMILY);
        facebook_examples(&d, FAMILY, &queries, 100, 19)
    };
    let run = || {
        let mut cfg = PipelineConfig::new(d.anchor_type, 5);
        cfg.train = semantic_proximity::learning::TrainConfig::fast(5);
        let mut engine = SearchEngine::build(d.graph.clone(), cfg);
        engine.train_class("family", &examples);
        engine.model("family").unwrap().weights.clone()
    };
    assert_eq!(run(), run());
}

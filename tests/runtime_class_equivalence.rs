//! Runtime-registration equivalence property: a class registered onto a
//! **live, mid-churn** engine/server pair via
//! `SearchEngine::register_class_serving` must be bit-identical — same
//! `rank`, `rank_multi`, and `table_stats` — to the same class present
//! from initial registration, after both pipelines absorb the same
//! random interleaved insert/delete batches.
//!
//! Each case draws a random typed base graph, a churn prefix and suffix,
//! and a random `ClassSpec` (pattern selection × transform). Pipeline A
//! registers the class up front and churns through everything; pipeline
//! B churns the prefix with only its trained class, registers the spec
//! against the live server between prefix and suffix, and churns the
//! rest. A from-scratch rematch + rebuild on the final graph anchors
//! both sides to ground truth.

use proptest::prelude::*;
use semantic_proximity::engine::scenario::{ClassSpec, PatternSelect};
use semantic_proximity::engine::{PipelineConfig, SearchEngine, TrainingStrategy};
use semantic_proximity::graph::delta::GraphDelta;
use semantic_proximity::graph::{Graph, GraphBuilder, NodeId, TypeId};
use semantic_proximity::index::{Transform, VectorIndex};
use semantic_proximity::learning::{mgp, TrainConfig, TrainingExample};
use semantic_proximity::matching::AnchorCounts;
use semantic_proximity::metagraph::Metagraph;
use semantic_proximity::online::{QueryServer, ServeConfig};

const USER: TypeId = TypeId(0);
const A: TypeId = TypeId(1);
const B: TypeId = TypeId(2);

fn base_graph(n_users: usize, n_a: usize, n_b: usize, edges: &[(usize, usize)]) -> Graph {
    let mut g = GraphBuilder::new();
    let user = g.add_type("user");
    let ta = g.add_type("a");
    let tb = g.add_type("b");
    let mut nodes = Vec::new();
    for i in 0..n_users {
        nodes.push(g.add_node(user, format!("u{i}")));
    }
    for i in 0..n_a {
        nodes.push(g.add_node(ta, format!("a{i}")));
    }
    for i in 0..n_b {
        nodes.push(g.add_node(tb, format!("b{i}")));
    }
    for &(x, y) in edges {
        let (x, y) = (x % nodes.len(), y % nodes.len());
        if x != y {
            g.add_edge(nodes[x], nodes[y]).unwrap();
        }
    }
    g.build()
}

fn catalogue() -> Vec<Metagraph> {
    vec![
        Metagraph::from_edges(&[USER, A, USER], &[(0, 1), (1, 2)]).unwrap(),
        Metagraph::from_edges(&[USER, B, USER], &[(0, 1), (1, 2)]).unwrap(),
        Metagraph::from_edges(&[USER, A, B, USER], &[(0, 1), (3, 1), (0, 2), (3, 2)]).unwrap(),
        Metagraph::from_edges(&[USER, A, USER, B, USER], &[(0, 1), (1, 2), (2, 3), (3, 4)])
            .unwrap(),
        Metagraph::from_edges(&[USER, USER, USER], &[(0, 1), (1, 2), (0, 2)]).unwrap(),
    ]
}

fn pipeline_cfg() -> PipelineConfig {
    let mut cfg = PipelineConfig::new(USER, 1);
    cfg.train = TrainConfig::fast(7);
    cfg.strategy = TrainingStrategy::Full;
    cfg.threads = 1;
    cfg
}

fn examples(n_users: usize) -> Vec<TrainingExample> {
    (0..n_users.min(8))
        .map(|i| TrainingExample {
            q: NodeId(i as u32),
            x: NodeId(((i + 1) % n_users) as u32),
            y: NodeId(((i + 2) % n_users) as u32),
        })
        .collect()
}

/// Decodes one `(x, y, kind)` churn op into `delta` — same decoding as
/// the incremental-equivalence suite, so both pipelines (which always
/// share graph state) build identical batches.
fn push_churn_op(
    delta: &mut GraphDelta,
    edges_now: &[(NodeId, NodeId)],
    n_base: usize,
    n_now: &mut usize,
    (x, y, kind): (usize, usize, u8),
) {
    match kind {
        0 => {
            let a = NodeId((x % *n_now) as u32);
            let b = NodeId((y % *n_now) as u32);
            if a != b {
                delta.add_edge(a, b).unwrap();
            }
        }
        1 => {
            let a = NodeId((x % *n_now) as u32);
            let ty = [USER, A, B][y % 3];
            *n_now += 1;
            let b = delta.add_node(ty, format!("fresh{n_now}"));
            delta.add_edge(a, b).unwrap();
        }
        2 if !edges_now.is_empty() => {
            let (a, b) = edges_now[x % edges_now.len()];
            delta.remove_edge(a, b).unwrap();
        }
        3 => {
            delta.remove_node(NodeId((x % n_base) as u32)).unwrap();
        }
        _ => {}
    }
}

/// Streams one churn batch through `engine.ingest_serving`, decoded
/// against the engine's current graph.
fn churn(engine: &mut SearchEngine, server: &QueryServer, batch: &[(usize, usize, u8)]) {
    let g_now = engine.graph().clone();
    let edges_now: Vec<(NodeId, NodeId)> = g_now.edges().collect();
    let mut delta = GraphDelta::for_graph(&g_now);
    let mut n_now = g_now.n_nodes();
    for &op in batch {
        push_churn_op(&mut delta, &edges_now, g_now.n_nodes(), &mut n_now, op);
    }
    engine.ingest_serving(&delta, server).unwrap();
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(12))]

    /// The tentpole property: `register_class_serving` on a live engine
    /// mid-churn equals the same class registered before any churn.
    #[test]
    fn runtime_registration_equals_buildtime_class(
        n_users in 6usize..11,
        n_a in 2usize..5,
        n_b in 2usize..5,
        base_edges in prop::collection::vec((0usize..100, 0usize..100), 15..35),
        prefix in prop::collection::vec(
            prop::collection::vec((0usize..1000, 0usize..1000, 0u8..4), 1..5),
            1..3,
        ),
        suffix in prop::collection::vec(
            prop::collection::vec((0usize..1000, 0usize..1000, 0u8..4), 1..5),
            1..3,
        ),
        select in 0u8..4,
        transform_pick in 0u8..3,
    ) {
        let transform = [Transform::Raw, Transform::Log1p, Transform::Binary]
            [transform_pick as usize];
        let patterns = match select {
            0 => PatternSelect::All,
            1 => PatternSelect::Seeds,
            2 => PatternSelect::Mined(vec![0, 2, 4]),
            // A shape the catalogue does not mine: matched from scratch
            // at registration time — on the *base* graph for pipeline A,
            // on the *churned* graph for pipeline B.
            _ => PatternSelect::Custom(vec![Metagraph::from_edges(
                &[USER, B, USER, A, USER],
                &[(0, 1), (1, 2), (2, 3), (3, 4)],
            )
            .unwrap()]),
        };
        let spec = ClassSpec::new("rt", patterns).with_transform(transform);
        let serve_cfg = || ServeConfig { workers: 2, shards: 3, cache_capacity: 64 };
        let g = base_graph(n_users, n_a, n_b, &base_edges);

        // Pipeline A: the runtime class is present from initial
        // registration and rides every delta.
        let mut a = SearchEngine::with_metagraphs(g.clone(), catalogue(), pipeline_cfg());
        a.train_class("base", &examples(n_users));
        a.register_class(&spec).unwrap();
        let server_a = a.serve_with(serve_cfg());
        prop_assert_eq!(server_a.class_id("rt"), Some(1));

        // Pipeline B: base class only; the runtime class arrives on the
        // live server between the churn prefix and suffix.
        let mut b = SearchEngine::with_metagraphs(g, catalogue(), pipeline_cfg());
        b.train_class("base", &examples(n_users));
        let server_b = b.serve_with(serve_cfg());

        for batch in &prefix {
            churn(&mut a, &server_a, batch);
            churn(&mut b, &server_b, batch);
        }
        let cid_rt = b.register_class_serving(&spec, &server_b).unwrap();
        prop_assert_eq!(cid_rt, 1);
        for batch in &suffix {
            churn(&mut a, &server_a, batch);
            churn(&mut b, &server_b, batch);
        }

        // Ground truth: full rematch + rebuild of the runtime class on
        // the final graph (pattern sets agree — Custom specs appended
        // the same metagraph to both engines).
        prop_assert_eq!(a.metagraphs().len(), b.metagraphs().len());
        let (coords, weights) = {
            let m = a.model("rt").unwrap();
            (m.coords.clone(), m.weights.clone())
        };
        let fresh = SearchEngine::with_metagraphs(
            a.graph().clone(),
            a.metagraphs().to_vec(),
            pipeline_cfg(),
        );
        let counts: Vec<AnchorCounts> = coords
            .iter()
            .map(|&i| fresh.counts(i).unwrap().clone())
            .collect();
        let truth = VectorIndex::from_counts(&counts, transform);

        // Bit-identical everywhere: engine search, served single-class
        // rank, served multi-class walk — for both classes — plus exact
        // table shape.
        let n_nodes = a.graph().n_nodes() as u32;
        for q in (0..n_nodes).map(NodeId) {
            for k in [3usize, 10] {
                let want = mgp::rank_with_scores(&truth, q, &weights, k);
                prop_assert_eq!(
                    &a.search("rt", q, k), &want,
                    "buildtime engine diverged from rebuild at q={} k={}", q, k
                );
                prop_assert_eq!(
                    &b.search("rt", q, k), &want,
                    "runtime engine diverged from rebuild at q={} k={}", q, k
                );
                prop_assert_eq!(
                    &*server_a.rank(1, q, k), &want,
                    "buildtime server diverged at q={} k={}", q, k
                );
                prop_assert_eq!(
                    &*server_b.rank(1, q, k), &want,
                    "runtime server diverged at q={} k={}", q, k
                );
                prop_assert_eq!(
                    &*server_a.rank(0, q, k), &*server_b.rank(0, q, k),
                    "base class diverged at q={} k={}", q, k
                );
                let ma = server_a.rank_multi(&[0, 1], q, k);
                let mb = server_b.rank_multi(&[0, 1], q, k);
                prop_assert_eq!(&*ma[0], &*mb[0], "rank_multi base diverged at q={}", q);
                prop_assert_eq!(&*ma[1], &*mb[1], "rank_multi rt diverged at q={}", q);
            }
        }
        for cid in [0usize, 1] {
            prop_assert_eq!(
                server_a.table_stats(cid), server_b.table_stats(cid),
                "table stats diverged for class {}", cid
            );
        }
    }
}

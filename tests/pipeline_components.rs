//! Cross-crate consistency of the offline pipeline's data flow:
//! mining → matching → indexing invariants on a real generated graph.

use semantic_proximity::datagen::facebook::{generate_facebook, FacebookConfig};
use semantic_proximity::graph::NodeId;
use semantic_proximity::index::{Transform, VectorIndex};
use semantic_proximity::matching::parallel::match_all;
use semantic_proximity::matching::{PatternInfo, QuickSi, SymIso};
use semantic_proximity::metagraph::{is_metapath, CanonicalCode, SymmetryInfo};
use semantic_proximity::mining::{mine, MinerConfig};

fn setup() -> (
    semantic_proximity::datagen::Dataset,
    Vec<PatternInfo>,
    Vec<semantic_proximity::matching::AnchorCounts>,
) {
    let d = generate_facebook(&FacebookConfig::tiny(99));
    let mut cfg = MinerConfig::paper_defaults(d.anchor_type, 5);
    cfg.max_patterns = Some(40);
    let mined = mine(&d.graph, &cfg);
    let patterns: Vec<PatternInfo> = mined
        .into_iter()
        .map(|m| PatternInfo::new(m.metagraph, d.anchor_type))
        .collect();
    let counts = match_all(&d.graph, &patterns, &SymIso::new(), 2);
    (d, patterns, counts)
}

#[test]
fn mined_patterns_are_matchable_and_symmetric() {
    let (d, patterns, counts) = setup();
    assert!(patterns.len() >= 10);
    for (p, c) in patterns.iter().zip(&counts) {
        // Every mined pattern is symmetric with an anchor pair.
        assert!(p.is_useful_for_proximity(), "{}", p.metagraph.brief());
        // Support threshold 5 ⇒ some instances must exist on this graph.
        assert!(
            c.n_instances > 0,
            "no instances for {}",
            p.metagraph.brief()
        );
        // SymISO counts equal a baseline's.
        let q = semantic_proximity::matching::anchor::anchor_counts(&QuickSi, &d.graph, p);
        assert_eq!(&q, c, "QuickSI disagrees on {}", p.metagraph.brief());
    }
}

#[test]
fn pair_counts_bounded_by_node_counts() {
    let (d, _patterns, counts) = setup();
    let users = d.graph.nodes_of_type(d.anchor_type);
    for c in &counts {
        for (&key, &pc) in &c.per_pair {
            let (x, y) = semantic_proximity::graph::ids::unpack_pair(key);
            assert!(pc <= c.node_count(x), "m_xy > m_x");
            assert!(pc <= c.node_count(y), "m_xy > m_y");
            // Pair endpoints are anchor-typed.
            assert!(users.contains(&x) && users.contains(&y));
        }
    }
}

#[test]
fn index_reflects_raw_counts() {
    let (_d, _patterns, counts) = setup();
    let idx = VectorIndex::from_counts(&counts, Transform::Raw);
    assert_eq!(idx.n_metagraphs(), counts.len());
    for (i, c) in counts.iter().enumerate() {
        for (&x, &cnt) in &c.per_node {
            let v = idx.node_vec(NodeId(x));
            let found = v.iter().find(|&&(j, _)| j == i as u32).map(|&(_, val)| val);
            assert_eq!(found, Some(cnt as f64));
        }
    }
    // Partner symmetry: y ∈ partners(x) ⇔ x ∈ partners(y).
    for c in &counts {
        for &key in c.per_pair.keys() {
            let (x, y) = semantic_proximity::graph::ids::unpack_pair(key);
            assert!(idx.partners(x).contains(&y.0));
            assert!(idx.partners(y).contains(&x.0));
        }
    }
}

#[test]
fn mining_respects_paper_constraints() {
    let (d, patterns, _) = setup();
    let mut codes = std::collections::BTreeSet::new();
    let mut n_paths = 0;
    for p in &patterns {
        let m = &p.metagraph;
        assert!(m.n_nodes() <= 5);
        assert!(m.is_connected());
        assert!(m.count_type(d.anchor_type) >= 2);
        assert!(m.count_type(d.anchor_type) < m.n_nodes());
        let info = SymmetryInfo::compute(m);
        assert!(!info.anchor_pairs(m, d.anchor_type).is_empty());
        assert!(codes.insert(CanonicalCode::of(m)), "duplicate pattern");
        if is_metapath(m) {
            n_paths += 1;
        }
    }
    // Metapaths are a strict minority (paper: 2–3%; more here because the
    // catalogue is capped, but never a majority).
    assert!(n_paths * 2 < patterns.len());
}

#[test]
fn log_transform_monotone_in_counts() {
    let (_d, _patterns, counts) = setup();
    let raw = VectorIndex::from_counts(&counts, Transform::Raw);
    let log = VectorIndex::from_counts(&counts, Transform::Log1p);
    // Same sparsity pattern, transformed values, order preserved.
    for c in &counts {
        for &x in c.per_node.keys() {
            let rv = raw.node_vec(NodeId(x));
            let lv = log.node_vec(NodeId(x));
            assert_eq!(rv.len(), lv.len());
            for (&(i, r), &(j, l)) in rv.iter().zip(lv) {
                assert_eq!(i, j);
                assert!((l - (1.0 + r).ln()).abs() < 1e-12);
            }
        }
    }
}

//! Property-based verification of Theorem 1 (properties of MGP) on
//! randomly generated metagraph vector indexes.

use proptest::prelude::*;
use semantic_proximity::graph::{FxHashMap, NodeId};
use semantic_proximity::index::{Transform, VectorIndex};
use semantic_proximity::learning::proximity;
use semantic_proximity::matching::AnchorCounts;

/// Builds a random but *consistent* index: for each metagraph, pair counts
/// are generated and node counts derived as the number of instances the
/// node appears in (the sum over its pairs is a valid upper bound shape;
/// we use max to respect m_xy ≤ m_x).
fn index_from_pairs(n_nodes: u32, pairs_per_mg: &[Vec<(u32, u32, u64)>]) -> VectorIndex {
    let counts: Vec<AnchorCounts> = pairs_per_mg
        .iter()
        .map(|pairs| {
            let mut per_pair: FxHashMap<u64, u64> = FxHashMap::default();
            let mut per_node: FxHashMap<u32, u64> = FxHashMap::default();
            for &(x, y, c) in pairs {
                let (x, y) = (x % n_nodes, y % n_nodes);
                if x == y || c == 0 {
                    continue;
                }
                let key = semantic_proximity::graph::ids::pack_pair(NodeId(x), NodeId(y));
                let e = per_pair.entry(key).or_insert(0);
                *e = (*e).max(c);
            }
            // m_x must dominate every m_xy that involves x; sum is the
            // natural consistent choice (disjoint instances).
            for (&key, &c) in &per_pair {
                let (a, b) = semantic_proximity::graph::ids::unpack_pair(key);
                *per_node.entry(a.0).or_insert(0) += c;
                *per_node.entry(b.0).or_insert(0) += c;
            }
            AnchorCounts {
                per_node,
                per_pair,
                n_instances: 0,
            }
        })
        .collect();
    VectorIndex::from_counts(&counts, Transform::Raw)
}

fn arb_pairs() -> impl Strategy<Value = Vec<Vec<(u32, u32, u64)>>> {
    prop::collection::vec(
        prop::collection::vec((0u32..8, 0u32..8, 1u64..20), 1..10),
        1..5,
    )
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(64))]

    #[test]
    fn symmetry_self_max_range_scale_invariance(
        pairs in arb_pairs(),
        w in prop::collection::vec(0.01f64..1.0, 5),
        c in 0.1f64..10.0,
    ) {
        let idx = index_from_pairs(8, &pairs);
        let w = &w[..idx.n_metagraphs().min(w.len())];
        if w.len() < idx.n_metagraphs() {
            return Ok(()); // not enough weights drawn; skip
        }
        let scaled: Vec<f64> = w.iter().map(|x| x * c).collect();
        for x in 0..8u32 {
            for y in 0..8u32 {
                let (nx, ny) = (NodeId(x), NodeId(y));
                let p = proximity(&idx, nx, ny, w);
                // Symmetry.
                prop_assert_eq!(p.to_bits(), proximity(&idx, ny, nx, w).to_bits());
                // Range and self-maximum.
                prop_assert!((0.0..=1.0 + 1e-9).contains(&p), "π={p}");
                if x == y {
                    prop_assert_eq!(p, 1.0);
                }
                // Scale invariance.
                let ps = proximity(&idx, nx, ny, &scaled);
                prop_assert!((p - ps).abs() < 1e-9);
            }
        }
    }

    #[test]
    fn partial_transitivity_near_one(
        pairs in arb_pairs(),
        w in prop::collection::vec(0.05f64..1.0, 5),
    ) {
        // Theorem 1's partial transitivity: when π(x,y) and π(x,z) are both
        // ~1, π(y,z) is bounded away from... in fact the theorem gives
        // π(y,z) ≥ 2ε for suitable thresholds. We verify the qualitative
        // consequence at the extreme: π(x,y) = π(x,z) = 1 forces y and z to
        // share all of x's weighted instances, so π(y,z) > 0.
        let idx = index_from_pairs(8, &pairs);
        let w = &w[..idx.n_metagraphs().min(w.len())];
        if w.len() < idx.n_metagraphs() {
            return Ok(());
        }
        for x in 0..8u32 {
            for y in 0..8u32 {
                for z in 0..8u32 {
                    if x == y || x == z || y == z {
                        continue;
                    }
                    let pxy = proximity(&idx, NodeId(x), NodeId(y), w);
                    let pxz = proximity(&idx, NodeId(x), NodeId(z), w);
                    if pxy > 0.999 && pxz > 0.999 {
                        let pyz = proximity(&idx, NodeId(y), NodeId(z), w);
                        prop_assert!(
                            pyz > 0.0,
                            "transitivity violated: π(x,y)={pxy}, π(x,z)={pxz}, π(y,z)={pyz}"
                        );
                    }
                }
            }
        }
    }
}

#[test]
fn partial_transitivity_concrete() {
    // A hand-built index where x is maximally close to y and z through one
    // metagraph: then y and z must co-occur too (they share x's instances).
    // x pairs with y and z; y pairs with z (as instances of a shared-attr
    // metagraph force overlapping instance sets).
    let pairs = vec![vec![(0, 1, 5), (0, 2, 5), (1, 2, 5)]];
    let idx = index_from_pairs(3, &pairs);
    let w = [1.0];
    let pxy = proximity(&idx, NodeId(0), NodeId(1), &w);
    let pxz = proximity(&idx, NodeId(0), NodeId(2), &w);
    let pyz = proximity(&idx, NodeId(1), NodeId(2), &w);
    assert!(pxy > 0.4 && pxz > 0.4);
    assert!(pyz > 0.0);
}

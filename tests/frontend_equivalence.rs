//! Front-end equivalence and robustness: the async micro-batching
//! front-end must be a *transparent* layer — every answer it returns is
//! bit-identical to calling the underlying `QueryServer` directly, no
//! matter how requests interleave with churn batches, how duplicates
//! coalesce, or how often the bounded admission queue sheds a request
//! (a shed retried after the queue drains gets the same answer a direct
//! call would). Alongside: the bounded queue actually bounds buffered
//! work under a sustained flood, and a malformed churn delta (stale
//! imported models) is rejected atomically with a typed error instead
//! of panicking the serving process.

use proptest::prelude::*;
use semantic_proximity::engine::{IngestError, PipelineConfig, SearchEngine, TrainingStrategy};
use semantic_proximity::graph::delta::GraphDelta;
use semantic_proximity::graph::{Graph, GraphBuilder, NodeId, TypeId};
use semantic_proximity::learning::{TrainConfig, TrainingExample};
use semantic_proximity::metagraph::Metagraph;
use semantic_proximity::online::{FrontendConfig, FrontendError, ServeConfig};
use std::time::Duration;

const USER: TypeId = TypeId(0);
const A: TypeId = TypeId(1);
const B: TypeId = TypeId(2);

fn base_graph(n_users: usize, n_a: usize, n_b: usize, edges: &[(usize, usize)]) -> Graph {
    let mut g = GraphBuilder::new();
    let user = g.add_type("user");
    let ta = g.add_type("a");
    let tb = g.add_type("b");
    let mut nodes = Vec::new();
    for i in 0..n_users {
        nodes.push(g.add_node(user, format!("u{i}")));
    }
    for i in 0..n_a {
        nodes.push(g.add_node(ta, format!("a{i}")));
    }
    for i in 0..n_b {
        nodes.push(g.add_node(tb, format!("b{i}")));
    }
    for &(x, y) in edges {
        let (x, y) = (x % nodes.len(), y % nodes.len());
        if x != y {
            g.add_edge(nodes[x], nodes[y]).unwrap();
        }
    }
    g.build()
}

fn catalogue() -> Vec<Metagraph> {
    vec![
        Metagraph::from_edges(&[USER, A, USER], &[(0, 1), (1, 2)]).unwrap(),
        Metagraph::from_edges(&[USER, B, USER], &[(0, 1), (1, 2)]).unwrap(),
        Metagraph::from_edges(&[USER, A, B, USER], &[(0, 1), (3, 1), (0, 2), (3, 2)]).unwrap(),
        Metagraph::from_edges(&[USER, USER, USER], &[(0, 1), (1, 2), (0, 2)]).unwrap(),
    ]
}

fn pipeline_cfg() -> PipelineConfig {
    let mut cfg = PipelineConfig::new(USER, 1);
    cfg.train = TrainConfig::fast(7);
    cfg.strategy = TrainingStrategy::Full;
    cfg.threads = 1;
    cfg
}

fn salted_examples(n_users: usize, salt: usize) -> Vec<TrainingExample> {
    (0..n_users.min(8))
        .map(|i| TrainingExample {
            q: NodeId(((i + salt) % n_users) as u32),
            x: NodeId(((i + salt + 1) % n_users) as u32),
            y: NodeId(((i + 2 * salt + 2) % n_users) as u32),
        })
        .collect()
}

/// Submits with a bounded retry loop: a shed request is retried until the
/// queue drains — the ISSUE contract is that the *retried* request's
/// answer matches a direct call, not that no request is ever shed.
fn submit_retrying(
    frontend: &semantic_proximity::online::Frontend,
    class_id: usize,
    q: NodeId,
    k: usize,
) -> semantic_proximity::online::Ticket {
    for _ in 0..100_000 {
        match frontend.submit(class_id, q, k) {
            Ok(t) => return t,
            Err(FrontendError::Overloaded { .. }) => std::thread::yield_now(),
            Err(e) => panic!("unexpected submit error: {e}"),
        }
    }
    panic!("queue never drained");
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(8))]

    /// Waves of front-end requests interleaved with churn batches: every
    /// ticket answer is bit-identical to ranking the same `(class, q, k)`
    /// directly on the shared server — through micro-batch windows,
    /// duplicate coalescing, and a deliberately tiny admission queue that
    /// sheds under each wave.
    #[test]
    fn frontend_answers_are_bit_identical_to_direct_calls(
        n_users in 6usize..10,
        n_a in 2usize..4,
        n_b in 2usize..4,
        base_edges in prop::collection::vec((0usize..100, 0usize..100), 12..30),
        batches in prop::collection::vec(
            (
                prop::collection::vec((0usize..1000, 0usize..1000, 0u8..4), 1..4),
                prop::collection::vec((any::<bool>(), 0usize..1000, 0u8..3), 6..20),
            ),
            1..3,
        ),
    ) {
        let g = base_graph(n_users, n_a, n_b, &base_edges);
        let mut engine = SearchEngine::with_metagraphs(g, catalogue(), pipeline_cfg());
        engine.train_class("c0", &salted_examples(n_users, 1));
        engine.train_class("c1", &salted_examples(n_users, 3));
        let frontend = engine.serve_frontend_with(
            ServeConfig { workers: 2, shards: 3, cache_capacity: 64 },
            FrontendConfig {
                workers: 2,
                window: Duration::from_micros(200),
                max_batch: 4,
                queue_depth: 4,
                ..FrontendConfig::default()
            },
        );
        let server = frontend.server().clone();
        let c0 = server.class_id("c0").unwrap();
        let c1 = server.class_id("c1").unwrap();

        for (churn, wave) in batches {
            // Churn lands through the same epoch-swapped server the
            // front-end ranks on; requests in the next wave see the
            // post-delta shards.
            let g_now = engine.graph().clone();
            let edges_now: Vec<(NodeId, NodeId)> = g_now.edges().collect();
            let mut delta = GraphDelta::for_graph(&g_now);
            let mut n_now = g_now.n_nodes();
            for (x, y, kind) in churn {
                match kind {
                    0 => {
                        let a = NodeId((x % n_now) as u32);
                        let b = NodeId((y % n_now) as u32);
                        if a != b {
                            delta.add_edge(a, b).unwrap();
                        }
                    }
                    1 => {
                        let a = NodeId((x % n_now) as u32);
                        let ty = [USER, A, B][y % 3];
                        n_now += 1;
                        let b = delta.add_node(ty, format!("fresh{n_now}"));
                        delta.add_edge(a, b).unwrap();
                    }
                    2 if !edges_now.is_empty() => {
                        let (a, b) = edges_now[x % edges_now.len()];
                        delta.remove_edge(a, b).unwrap();
                    }
                    3 => {
                        delta.remove_node(NodeId((x % g_now.n_nodes()) as u32)).unwrap();
                    }
                    _ => {}
                }
            }
            engine.ingest_serving(&delta, frontend.server()).unwrap();

            // One wave: duplicate-heavy (q drawn mod a small range),
            // mixed classes and ks, submitted all at once so windows
            // actually batch and the depth-4 queue actually sheds.
            let n_nodes = engine.graph().n_nodes();
            let mut inflight = Vec::new();
            for (pick_c1, x, kk) in wave {
                let cid = if pick_c1 { c1 } else { c0 };
                let q = NodeId((x % n_nodes.min(6)) as u32);
                let k = [0usize, 3, 10][kk as usize % 3];
                inflight.push((cid, q, k, submit_retrying(&frontend, cid, q, k)));
            }
            for (cid, q, k, ticket) in inflight {
                let got = ticket.wait().unwrap();
                let want = server.rank(cid, q, k);
                prop_assert_eq!(
                    &*got, &*want,
                    "front-end diverged at class={} q={} k={}", cid, q, k
                );
                if k == 0 {
                    prop_assert!(got.is_empty());
                }
            }
        }

        // Degenerate class ids come back as typed errors, not panics.
        let bogus = server.n_classes() + 7;
        prop_assert!(matches!(
            frontend.submit(bogus, NodeId(0), 5),
            Err(FrontendError::Query(_))
        ));

        let stats = frontend.shutdown();
        prop_assert_eq!(stats.completed + stats.shed(), stats.submitted);
    }
}

/// A sustained multi-thread flood against a depth-3 queue: admission
/// keeps the number of buffered requests bounded (the memory bound), every
/// non-shed request completes, and the front-end still answers correctly
/// afterwards.
#[test]
fn bounded_queue_bounds_buffered_work_under_flood() {
    let g = base_graph(6, 3, 2, &[(0, 6), (1, 6), (0, 7), (2, 7), (1, 9), (2, 9)]);
    let mut engine = SearchEngine::with_metagraphs(g, catalogue(), pipeline_cfg());
    engine.train_class("c", &salted_examples(6, 1));
    let frontend = engine.serve_frontend_with(
        ServeConfig {
            workers: 1,
            shards: 2,
            cache_capacity: 0,
        },
        FrontendConfig {
            workers: 1,
            window: Duration::ZERO,
            max_batch: 1,
            queue_depth: 3,
            ..FrontendConfig::default()
        },
    );

    const THREADS: usize = 4;
    const PER_THREAD: usize = 500;
    std::thread::scope(|s| {
        for t in 0..THREADS {
            let frontend = &frontend;
            s.spawn(move || {
                for i in 0..PER_THREAD {
                    // Tickets are dropped immediately: even a caller that
                    // walks away must not leak or wedge a worker.
                    let _ = frontend.submit(0, NodeId(((t + i) % 6) as u32), 5);
                }
            });
        }
    });

    // A request submitted after the flood still answers correctly.
    let direct = frontend.server().rank(0, NodeId(1), 5);
    let ticket = submit_retrying(&frontend, 0, NodeId(1), 5);
    assert_eq!(&*ticket.wait().unwrap(), &*direct);

    let stats = frontend.shutdown();
    // ≥: the post-flood submit may itself get shed and retried while the
    // queue drains, and every shed attempt counts as a submission.
    assert!(stats.submitted > (THREADS * PER_THREAD) as u64);
    assert!(
        stats.max_queue_depth <= 3,
        "queue depth {} escaped the bound",
        stats.max_queue_depth
    );
    assert!(
        stats.shed() > 0,
        "a depth-3 queue must shed under this flood"
    );
    assert_eq!(
        stats.completed + stats.shed(),
        stats.submitted,
        "every admitted request must complete by shutdown"
    );
}

/// The no-more-panics-on-ingest contract, end to end: importing models
/// trained against a *different* (older) graph and then ingesting
/// removals the stale model never counted must return a typed
/// [`IngestError::Underflow`] naming the class — with the engine's
/// graph, counts and search results bit-identical to before the call —
/// instead of panicking mid-mutation. Re-importing correct models makes
/// the same delta apply cleanly.
#[test]
fn stale_model_import_rejects_removal_atomically() {
    // Users u4 (NodeId 4) and u5 (NodeId 5) start with no edges at all:
    // any instance through them exists only after the insertion below,
    // so a stale (pre-insertion) model must underflow when it is asked
    // to forget them.
    let g = base_graph(
        6,
        3,
        2,
        &[(0, 6), (1, 6), (0, 7), (2, 7), (1, 9), (2, 9), (3, 8)],
    );
    let mut engine = SearchEngine::with_metagraphs(g, catalogue(), pipeline_cfg());
    engine.train_class("c", &salted_examples(6, 1));
    let stale = engine.export_models();

    // Churn: a0 (NodeId 6) gains edges to u4 and u5 — new USER-A-USER
    // instances (u4, a0, u5), (u0, a0, u4), … land in counts and models.
    let mut grow = GraphDelta::for_graph(engine.graph());
    grow.add_edge(NodeId(4), NodeId(6)).unwrap();
    grow.add_edge(NodeId(5), NodeId(6)).unwrap();
    let report = engine.ingest(&grow).unwrap();
    assert!(report.new_instances > 0, "insertion must create instances");
    let correct = engine.export_models();

    // Swap in the stale models and try to remove one of those edges.
    engine.import_models(&stale).unwrap();
    let n_edges_before = engine.graph().n_edges();
    let counts_before = engine.counts(0).unwrap().clone();
    let results_before = engine.search("c", NodeId(0), 5);

    let mut shrink = GraphDelta::for_graph(engine.graph());
    shrink.remove_edge(NodeId(4), NodeId(6)).unwrap();
    let err = engine.ingest(&shrink).unwrap_err();
    match &err {
        IngestError::Underflow { class, .. } => {
            assert_eq!(class.as_deref(), Some("c"), "the stale class is named");
        }
        other => panic!("expected Underflow, got {other:?}"),
    }
    assert!(err.to_string().contains("would go negative"));

    // Atomic rejection: nothing moved.
    assert_eq!(engine.graph().n_edges(), n_edges_before);
    assert_eq!(engine.counts(0).unwrap(), &counts_before);
    assert_eq!(engine.search("c", NodeId(0), 5), results_before);

    // Recovery: with the correct models back, the same delta applies.
    engine.import_models(&correct).unwrap();
    let report = engine.ingest(&shrink).unwrap();
    assert_eq!(report.removed_edges, 1);
    assert!(report.doomed_instances > 0);
}

//! Layout-equivalence property for the fused SoA posting blocks: under
//! random interleaved churn — including batches that empty an anchor's
//! candidate set (its block column must drop) and tombstone-detach nodes
//! that appear as candidates — `rank`, `rank_multi`, and
//! `rank_multi_batch` over the patched per-anchor SoA columns must stay
//! **bit-identical** to a full rematch + rebuild oracle, and the server's
//! posting footprint must match a freshly registered server exactly (no
//! leaked all-absent columns, no stale candidates surviving in a block).

use proptest::prelude::*;
use semantic_proximity::engine::{PipelineConfig, SearchEngine, TrainingStrategy};
use semantic_proximity::graph::delta::GraphDelta;
use semantic_proximity::graph::{Graph, GraphBuilder, NodeId, TypeId};
use semantic_proximity::index::{Transform, VectorIndex};
use semantic_proximity::learning::{mgp, TrainConfig, TrainingExample};
use semantic_proximity::matching::AnchorCounts;
use semantic_proximity::metagraph::Metagraph;
use semantic_proximity::online::ServeConfig;

const USER: TypeId = TypeId(0);
const A: TypeId = TypeId(1);
const B: TypeId = TypeId(2);

fn base_graph(n_users: usize, n_a: usize, n_b: usize, edges: &[(usize, usize)]) -> Graph {
    let mut g = GraphBuilder::new();
    let user = g.add_type("user");
    let ta = g.add_type("a");
    let tb = g.add_type("b");
    let mut nodes = Vec::new();
    for i in 0..n_users {
        nodes.push(g.add_node(user, format!("u{i}")));
    }
    for i in 0..n_a {
        nodes.push(g.add_node(ta, format!("a{i}")));
    }
    for i in 0..n_b {
        nodes.push(g.add_node(tb, format!("b{i}")));
    }
    for &(x, y) in edges {
        let (x, y) = (x % nodes.len(), y % nodes.len());
        if x != y {
            g.add_edge(nodes[x], nodes[y]).unwrap();
        }
    }
    g.build()
}

fn catalogue() -> Vec<Metagraph> {
    vec![
        Metagraph::from_edges(&[USER, A, USER], &[(0, 1), (1, 2)]).unwrap(),
        Metagraph::from_edges(&[USER, B, USER], &[(0, 1), (1, 2)]).unwrap(),
        Metagraph::from_edges(&[USER, A, B, USER], &[(0, 1), (3, 1), (0, 2), (3, 2)]).unwrap(),
        Metagraph::from_edges(&[USER, USER, USER], &[(0, 1), (1, 2), (0, 2)]).unwrap(),
    ]
}

fn pipeline_cfg() -> PipelineConfig {
    let mut cfg = PipelineConfig::new(USER, 1);
    cfg.train = TrainConfig::fast(5);
    cfg.strategy = TrainingStrategy::Full;
    cfg.threads = 1;
    cfg
}

/// Per-class training triples, deterministically derived from a salt so
/// the three classes get distinct weight vectors.
fn salted_examples(n_users: usize, salt: usize) -> Vec<TrainingExample> {
    (0..n_users.min(8))
        .map(|i| TrainingExample {
            q: NodeId(((i + salt) % n_users) as u32),
            x: NodeId(((i + salt + 1) % n_users) as u32),
            y: NodeId(((i + 2 * salt + 2) % n_users) as u32),
        })
        .collect()
}

/// Full rematch + rebuild of one class's index on `engine`'s current
/// graph — the oracle the fused SoA layout is pinned against.
fn rebuilt_index(engine: &SearchEngine, coords: &[usize]) -> VectorIndex {
    let fresh = SearchEngine::with_metagraphs(
        engine.graph().clone(),
        engine.metagraphs().to_vec(),
        pipeline_cfg(),
    );
    let counts: Vec<AnchorCounts> = coords
        .iter()
        .map(|&i| fresh.counts(i).unwrap().clone())
        .collect();
    VectorIndex::from_counts(&counts, Transform::Log1p)
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(8))]

    /// Drives removal-heavy churn through the fused delta path and pins
    /// every rank flavour — plus the posting footprint itself — against
    /// a from-scratch rebuild. Op kinds are removal-biased on purpose:
    /// emptied anchors and tombstoned candidates are exactly where an
    /// in-place SoA patch can leave a stale column behind.
    #[test]
    fn fused_soa_layout_matches_full_rebuild_under_churn(
        n_users in 6usize..11,
        n_a in 2usize..5,
        n_b in 2usize..5,
        base_edges in prop::collection::vec((0usize..100, 0usize..100), 15..35),
        batches in prop::collection::vec(
            prop::collection::vec((0usize..1000, 0usize..1000, 0u8..6), 2..6),
            1..4,
        ),
    ) {
        const CLASSES: [&str; 3] = ["c0", "c1", "c2"];
        let g = base_graph(n_users, n_a, n_b, &base_edges);
        let mut engine = SearchEngine::with_metagraphs(g, catalogue(), pipeline_cfg());
        for (salt, name) in CLASSES.iter().enumerate() {
            engine.train_class(name, &salted_examples(n_users, 3 * salt + 1));
        }
        let models: Vec<(Vec<usize>, Vec<f64>)> = CLASSES
            .iter()
            .map(|name| {
                let m = engine.model(name).unwrap();
                (m.coords.clone(), m.weights.clone())
            })
            .collect();
        let server = engine.serve_with(ServeConfig {
            workers: 2,
            shards: 3,
            cache_capacity: 64,
        });
        let cids: Vec<usize> = CLASSES
            .iter()
            .map(|n| server.class_id(n).unwrap())
            .collect();

        for batch in batches {
            let g_now = engine.graph().clone();
            let edges_now: Vec<(NodeId, NodeId)> = g_now.edges().collect();
            let mut delta = GraphDelta::for_graph(&g_now);
            let mut n_now = g_now.n_nodes();
            for (x, y, kind) in batch {
                match kind {
                    // Insert an edge among existing nodes.
                    0 => {
                        let a = NodeId((x % n_now) as u32);
                        let b = NodeId((y % n_now) as u32);
                        if a != b {
                            delta.add_edge(a, b).unwrap();
                        }
                    }
                    // Insert an edge through a freshly added node.
                    1 => {
                        let a = NodeId((x % n_now) as u32);
                        let ty = [USER, A, B][y % 3];
                        n_now += 1;
                        let b = delta.add_node(ty, format!("fresh{n_now}"));
                        delta.add_edge(a, b).unwrap();
                    }
                    // Remove an existing edge (duplicates tolerated).
                    2 | 4 if !edges_now.is_empty() => {
                        let (a, b) = edges_now[(x.wrapping_mul(7 + kind as usize))
                            % edges_now.len()];
                        delta.remove_edge(a, b).unwrap();
                    }
                    // Tombstone-detach a node — any postings naming it
                    // as a candidate must vanish from their blocks.
                    3 => {
                        delta
                            .remove_node(NodeId((x % g_now.n_nodes()) as u32))
                            .unwrap();
                    }
                    // Drain one anchor edge-by-edge: removing every
                    // incident edge empties its candidate set, so its
                    // whole SoA block must drop, not linger all-absent.
                    5 => {
                        let v = NodeId((x % g_now.n_nodes()) as u32);
                        for &(a, b) in &edges_now {
                            if a == v || b == v {
                                delta.remove_edge(a, b).unwrap();
                            }
                        }
                    }
                    _ => {}
                }
            }
            let report = engine.ingest_serving(&delta, &server).unwrap();
            prop_assert!(
                report.fused_shard_visits <= report.sequential_shard_visits(),
                "fused visits {} exceed the per-class sum {}",
                report.fused_shard_visits, report.sequential_shard_visits()
            );

            // Oracle per class: full rematch + rebuild, same weights.
            let references: Vec<(VectorIndex, &[f64])> = models
                .iter()
                .map(|(coords, weights)| (rebuilt_index(&engine, coords), &weights[..]))
                .collect();

            // Every rank flavour over the patched SoA columns equals the
            // oracle, for every anchor — including k=1 (top-gate edge)
            // and k beyond any candidate-set size.
            let n_nodes = engine.graph().n_nodes() as u32;
            for q in 0..n_nodes {
                let q = NodeId(q);
                for k in [1usize, 4, 16] {
                    let multi = server.rank_multi(&cids, q, k);
                    for (j, (rebuilt, weights)) in references.iter().enumerate() {
                        let want = mgp::rank_with_scores(rebuilt, q, weights, k);
                        prop_assert_eq!(
                            &*multi[j], &want,
                            "rank_multi diverged: class {} q={} k={}", CLASSES[j], q, k
                        );
                        prop_assert_eq!(
                            &*server.rank(cids[j], q, k), &want,
                            "rank diverged: class {} q={} k={}", CLASSES[j], q, k
                        );
                    }
                }
            }
            let all: Vec<NodeId> = (0..n_nodes).map(NodeId).collect();
            let grid = server.rank_multi_batch(&cids, &all, 5);
            for (q, row) in all.iter().zip(&grid) {
                for (j, (rebuilt, weights)) in references.iter().enumerate() {
                    let want = mgp::rank_with_scores(rebuilt, *q, weights, 5);
                    prop_assert_eq!(
                        &*row[j], &want,
                        "rank_multi_batch diverged: class {} q={}", CLASSES[j], q
                    );
                }
            }

            // The patched posting footprint is byte-for-byte what a
            // freshly registered server would build: emptied anchors
            // dropped their blocks, tombstoned candidates their rows.
            let fresh_server = engine.serve_with(ServeConfig {
                workers: 2,
                shards: 3,
                cache_capacity: 0,
            });
            for (name, &cid) in CLASSES.iter().zip(&cids) {
                let fresh_cid = fresh_server.class_id(name).unwrap();
                prop_assert_eq!(
                    server.table_stats(cid),
                    fresh_server.table_stats(fresh_cid),
                    "posting footprint diverged from fresh build for class {}",
                    name
                );
            }
        }
    }
}

//! Live serving: one thread streams graph deltas while workers keep
//! ranking.
//!
//! Demonstrates the concurrency model of the serving layer: the engine
//! builds a shared [`QueryServer`] handle (`Arc<QueryServer>`), worker
//! threads clone it and batch-rank continuously, and the main thread
//! ingests a stream of edge insertions and removals through
//! `SearchEngine::ingest` + `QueryServer::apply_delta` — which patches
//! the live server shard by shard via epoch-swapped snapshots, so the
//! workers never block and every ranking they return is consistently
//! pre- or post-delta. (`SearchEngine::ingest_serving` bundles the same
//! two steps into one call; they are split here to show each stage's
//! work. The hard proof that batches complete *during* an in-flight
//! patch lives in `bench_concurrent`, which asserts it in CI.)
//!
//! Along the way it prints the cache hit rate (generation-stamped
//! invalidation keeps untouched queries cached across deltas) and the
//! per-delta swap statistics.
//!
//! Run with: `cargo run --release --example live_serving`
//!
//! [`QueryServer`]: semantic_proximity::online::QueryServer

use semantic_proximity::datagen::facebook::{generate_facebook, FacebookConfig, FAMILY};
use semantic_proximity::engine::{PipelineConfig, SearchEngine, TrainingStrategy};
use semantic_proximity::graph::{GraphDelta, NodeId};
use semantic_proximity::learning::{sample_examples, TrainConfig};
use semantic_proximity::online::DeltaStats;

use rand::SeedableRng;
use rand_chacha::ChaCha8Rng;
use std::sync::atomic::{AtomicBool, AtomicUsize, Ordering};
use std::time::Duration;

const WORKERS: usize = 3;
const BATCH: usize = 128;

fn main() {
    // Offline phase: dataset, mining, matching, indexing, training.
    let d = generate_facebook(&FacebookConfig::tiny(42));
    let mut cfg = PipelineConfig::new(d.anchor_type, 5);
    cfg.train = TrainConfig::fast(1);
    cfg.strategy = TrainingStrategy::Full;
    let mut engine = SearchEngine::build(d.graph.clone(), cfg);
    let queries = d.labels.queries_of_class(FAMILY);
    let anchors: Vec<NodeId> = d.graph.nodes_of_type(d.anchor_type).to_vec();
    let mut rng = ChaCha8Rng::seed_from_u64(7);
    let examples = sample_examples(
        &queries,
        |q| d.labels.positives_of(q, FAMILY),
        |q, v| d.labels.has(q, v, FAMILY),
        &anchors,
        200,
        &mut rng,
    );
    engine.train_class("family", &examples);

    // Online phase: a *shared* server handle. Workers clone the Arc;
    // ranking and delta application are both `&self`.
    let server = engine.serve_shared();
    let cid = server.class_id("family").unwrap();
    println!(
        "Serving `family` over {} nodes / {} edges with {WORKERS} worker threads, {} shards\n",
        engine.graph().n_nodes(),
        engine.graph().n_edges(),
        server.n_shards()
    );

    // A stream of live events: fresh user–attribute edges that get added
    // and later removed again (an unfriend/unenroll churn cycle).
    let g = engine.graph().clone();
    let events: Vec<(NodeId, NodeId)> = {
        let attrs: Vec<NodeId> = g
            .nodes()
            .filter(|&v| g.node_type(v) != d.anchor_type && g.degree(v) > 0)
            .collect();
        let mut pairs = Vec::new();
        'outer: for &u in &anchors {
            for &a in &attrs {
                if !g.has_edge(u, a) {
                    pairs.push((u, a));
                    if pairs.len() >= 10 {
                        break 'outer;
                    }
                }
            }
        }
        pairs
    };

    let stop = AtomicBool::new(false);
    let batches_done = AtomicUsize::new(0);

    std::thread::scope(|s| {
        // Worker threads: rank continuously until the stream ends. None
        // of them ever blocks on the writer below — `rank_batch` and
        // `apply_delta` are both `&self`, and `bench_concurrent` asserts
        // batches complete even while a patch is in flight.
        for w in 0..WORKERS {
            let server = server.clone();
            let anchors = &anchors;
            let (stop, batches_done) = (&stop, &batches_done);
            s.spawn(move || {
                let mut i = w;
                while !stop.load(Ordering::Relaxed) {
                    let batch: Vec<NodeId> = (0..BATCH)
                        .map(|j| anchors[(i * BATCH + j) % anchors.len()])
                        .collect();
                    let results = server.rank_batch(cid, &batch, 10);
                    assert_eq!(results.len(), BATCH);
                    batches_done.fetch_add(1, Ordering::Relaxed);
                    i += 1;
                }
            });
        }

        // Ingest thread (here: the main thread): stream the event log —
        // every edge inserted, then every edge removed, netting the graph
        // back to its base state — while the workers above keep serving.
        let mut swap_totals = DeltaStats::default();
        let mut n_deltas = 0usize;
        for remove in [false, true] {
            let verb = if remove { "remove" } else { "insert" };
            for &(u, a) in &events {
                let mut delta = GraphDelta::for_graph(engine.graph());
                if remove {
                    delta.remove_edge(u, a).unwrap();
                } else {
                    delta.add_edge(u, a).unwrap();
                }
                // Offline chain (graph → matching → index), then the
                // shard-by-shard serving patch — the split-out spelling
                // of `ingest_serving`.
                let report = engine.ingest(&delta).unwrap();
                let mut swap = DeltaStats::default();
                for (name, touch) in &report.per_class {
                    if let Some(c) = server.class_id(name) {
                        let index = &engine.model(name).unwrap().index;
                        swap += server.apply_delta(c, index, touch);
                    }
                }
                n_deltas += 1;
                swap_totals += swap;
                println!(
                    "{verb} {u}–{a}: {} new / {} doomed instances, swap: {swap}",
                    report.new_instances, report.doomed_instances,
                );
                std::thread::sleep(Duration::from_millis(2));
            }
        }
        stop.store(true, Ordering::Relaxed);
        println!("\n--- stream ended: {n_deltas} deltas ---");
        println!("total swap work: {swap_totals}");
    });

    let stats = server.stats();
    let total = stats.cache_hits + stats.cache_misses;
    println!(
        "workers: {} batches served across the delta stream, zero blocking",
        batches_done.load(Ordering::Relaxed)
    );
    println!(
        "cache: {} hits / {} misses ({:.1}% hit rate — untouched anchors stayed cached across deltas)",
        stats.cache_hits,
        stats.cache_misses,
        100.0 * stats.cache_hits as f64 / total.max(1) as f64
    );
    println!(
        "latency: {} batches, p50 {:?}, p99 {:?}",
        stats.latency.count,
        stats.latency.p50(),
        stats.latency.p99()
    );
    println!("tables: {}", server.table_stats(cid));
}

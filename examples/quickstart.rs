//! Quickstart: the paper's Fig. 1/2 running example, end to end.
//!
//! Builds the toy social network (Alice, Bob, Kate, Jay, Tom), matches the
//! four toy metagraphs, and shows how different characteristic weights `w`
//! turn the *same* index into different semantic classes of proximity —
//! reproducing the table in Fig. 1(b).
//!
//! Run with: `cargo run --example quickstart`

use semantic_proximity::datagen::toy::{toy_graph, toy_metagraphs};
use semantic_proximity::index::{Transform, VectorIndex};
use semantic_proximity::learning::mgp;
use semantic_proximity::matching::{anchor::anchor_counts, PatternInfo, SymIso};

fn main() {
    let toy = toy_graph();
    let g = &toy.graph;
    println!(
        "Toy graph: {} nodes, {} edges, {} types",
        g.n_nodes(),
        g.n_edges(),
        g.n_types()
    );

    // The four toy metagraphs of Fig. 2.
    let (m1, m2, m3, m4) = toy_metagraphs(g);
    println!("\nMetagraphs (Fig. 2):");
    for (name, m) in [("M1", &m1), ("M2", &m2), ("M3", &m3), ("M4", &m4)] {
        println!("  {name}: {}", m.brief());
    }

    // Offline: match each metagraph (SymISO) and build the vector index.
    let patterns: Vec<PatternInfo> = [m1, m2, m3, m4]
        .into_iter()
        .map(|m| PatternInfo::new(m, toy.user))
        .collect();
    let counts: Vec<_> = patterns
        .iter()
        .map(|p| anchor_counts(&SymIso::new(), g, p))
        .collect();
    let index = VectorIndex::from_counts(&counts, Transform::Raw);

    // Online: different weights = different semantic classes (Sect. III-A's
    // example weights).
    let classes = [
        ("classmates", vec![0.9, 0.0, 0.0, 0.0]),
        ("close friends", vec![0.0, 0.6, 0.4, 0.0]),
        ("family", vec![0.0, 0.0, 0.0, 0.8]),
    ];

    println!("\nSemantic proximity search (cf. Fig. 1b):");
    for (class, w) in &classes {
        println!("  class: {class}");
        for q in ["Kate", "Bob"] {
            let qid = g.node_by_label(q).expect("toy node");
            let results = mgp::rank_with_scores(&index, qid, w, 3);
            let shown: Vec<String> = results
                .iter()
                .filter(|(_, s)| *s > 0.0)
                .map(|(v, s)| format!("{} (π={s:.2})", g.label(*v)))
                .collect();
            println!(
                "    {q} → {}",
                if shown.is_empty() {
                    "—".into()
                } else {
                    shown.join(", ")
                }
            );
        }
    }

    println!("\nExpected per the paper: Kate's classmates = Jay; Kate's close");
    println!("friends = Alice and Jay; Bob's family = Alice.");
}

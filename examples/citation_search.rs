//! Context-aware citation search (the paper's second motivating scenario).
//!
//! Builds a synthetic citation graph — papers, authors, venues, keywords —
//! with `paper` as the anchor type, demonstrating that the framework is not
//! tied to social networks or to `user` anchors. Two semantic classes of
//! paper–paper proximity are planted:
//!
//! * **same-problem**: papers sharing keywords *and* venue (they address
//!   the same core problem),
//! * **same-community**: papers sharing authors (background citations from
//!   the same group).
//!
//! Run with: `cargo run --release --example citation_search`

use rand::{Rng, SeedableRng};
use rand_chacha::ChaCha8Rng;
use semantic_proximity::datagen::{ClassId, PairLabels};
use semantic_proximity::engine::{PipelineConfig, SearchEngine, TrainingStrategy};
use semantic_proximity::graph::GraphBuilder;
use semantic_proximity::learning::sample_examples;

const SAME_PROBLEM: ClassId = ClassId(0);
const SAME_COMMUNITY: ClassId = ClassId(1);

fn main() {
    let mut rng = ChaCha8Rng::seed_from_u64(17);
    let mut b = GraphBuilder::new();
    let paper_t = b.add_type("paper");
    let author_t = b.add_type("author");
    let venue_t = b.add_type("venue");
    let keyword_t = b.add_type("keyword");

    let venues: Vec<_> = (0..6)
        .map(|i| b.add_node(venue_t, format!("venue{i}")))
        .collect();
    let keywords: Vec<_> = (0..30)
        .map(|i| b.add_node(keyword_t, format!("kw{i}")))
        .collect();
    let authors: Vec<_> = (0..40)
        .map(|i| b.add_node(author_t, format!("author{i}")))
        .collect();

    // Research "problems": a venue + a couple of characteristic keywords;
    // research "groups": author cliques.
    let mut papers = Vec::new();
    for i in 0..150 {
        let p = b.add_node(paper_t, format!("paper{i}"));
        let problem = rng.random_range(0..12);
        b.add_edge(p, venues[problem % venues.len()]).unwrap();
        b.add_edge(p, keywords[(problem * 2) % keywords.len()])
            .unwrap();
        if rng.random_bool(0.7) {
            b.add_edge(p, keywords[(problem * 2 + 1) % keywords.len()])
                .unwrap();
        }
        if rng.random_bool(0.4) {
            b.add_edge(p, keywords[rng.random_range(0..keywords.len())])
                .unwrap();
        }
        let group = rng.random_range(0..10);
        b.add_edge(p, authors[group * 4 % authors.len()]).unwrap();
        b.add_edge(
            p,
            authors[(group * 4 + rng.random_range(1..4)) % authors.len()],
        )
        .unwrap();
        papers.push(p);
    }
    let graph = b.build();

    // Ground truth per the planted semantics.
    let mut labels = PairLabels::new();
    for (i, &x) in papers.iter().enumerate() {
        for &y in &papers[i + 1..] {
            let share = |t| {
                graph
                    .neighbors_of_type(x, t)
                    .iter()
                    .any(|v| graph.neighbors_of_type(y, t).contains(v))
            };
            if share(keyword_t) && share(venue_t) {
                labels.insert(x, y, SAME_PROBLEM);
            }
            if share(author_t) {
                labels.insert(x, y, SAME_COMMUNITY);
            }
        }
    }
    println!(
        "Citation graph: {} nodes, {} edges; {} labelled paper pairs",
        graph.n_nodes(),
        graph.n_edges(),
        labels.n_pairs()
    );

    // Offline pipeline with paper as the anchor type.
    let mut cfg = PipelineConfig::new(paper_t, 5);
    cfg.strategy = TrainingStrategy::Full;
    let mut engine = SearchEngine::build(graph.clone(), cfg);
    println!(
        "Mined {} paper-anchored metagraphs",
        engine.metagraphs().len()
    );

    for (name, class) in [
        ("same-problem", SAME_PROBLEM),
        ("same-community", SAME_COMMUNITY),
    ] {
        let queries = labels.queries_of_class(class);
        let mut rng = ChaCha8Rng::seed_from_u64(3);
        let examples = sample_examples(
            &queries,
            |q| labels.positives_of(q, class),
            |q, v| labels.has(q, v, class),
            &papers,
            300,
            &mut rng,
        );
        engine.train_class(name, &examples);
    }

    // Query: filter citations by context.
    let q = papers[0];
    println!("\nQuery paper: {}", graph.label(q));
    for (name, class) in [
        ("same-problem", SAME_PROBLEM),
        ("same-community", SAME_COMMUNITY),
    ] {
        let results = engine.search(name, q, 5);
        let truth = labels.positives_of(q, class);
        let rendered: Vec<String> = results
            .iter()
            .map(|(v, s)| {
                let mark = if truth.contains(v) { "✓" } else { " " };
                format!("{}{} ({s:.2})", graph.label(*v), mark)
            })
            .collect();
        println!("  {name:14}: {}", rendered.join(", "));
    }
    println!("\n(✓ marks ground truth. The two contexts retrieve different papers.)");
}

//! Runtime class registration + the deterministic scenario suite.
//!
//! Builds a Facebook-like engine with one trained class, then:
//!
//! 1. registers a second relevance class **at runtime** from a
//!    `ClassSpec` — no training pass, no rebuild — and shows it
//!    answering immediately, riding a live delta like any built-in
//!    class;
//! 2. generates the named workload suite (zipfian steady reads, diurnal
//!    churn, hub deletion storms, cache-busting scans, tenant skew, and
//!    a class registered mid-traffic) from one seed and replays it
//!    against the live engine + front-end, printing the per-scenario
//!    report table.
//!
//! Run with: `cargo run --release --example scenarios`

use rand::SeedableRng;
use rand_chacha::ChaCha8Rng;
use semantic_proximity::datagen::facebook::{generate_facebook, FacebookConfig, FAMILY};
use semantic_proximity::engine::scenario::{
    run_scenarios, ClassSpec, DriverConfig, GeneratorConfig, PatternSelect, TraceGenerator,
};
use semantic_proximity::engine::{PipelineConfig, SearchEngine, TrainingStrategy};
use semantic_proximity::graph::{GraphDelta, NodeId};
use semantic_proximity::learning::sample_examples;

fn main() {
    let d = generate_facebook(&FacebookConfig::default());
    let mut cfg = PipelineConfig::new(d.anchor_type, 5);
    cfg.strategy = TrainingStrategy::Full;
    let mut engine = SearchEngine::build(d.graph.clone(), cfg);

    // One class the usual way: trained weights.
    let mut rng = ChaCha8Rng::seed_from_u64(9);
    let queries = d.labels.queries_of_class(FAMILY);
    let anchors: Vec<NodeId> = d.graph.nodes_of_type(d.anchor_type).to_vec();
    let examples = sample_examples(
        &queries,
        |q| d.labels.positives_of(q, FAMILY),
        |q, v| d.labels.has(q, v, FAMILY),
        &anchors,
        200,
        &mut rng,
    );
    engine.train_class("family", &examples);

    // --- 1. runtime registration ------------------------------------
    // A second class from a spec: the metapath seeds with uniform
    // weights, compiled against the live engine's cached counts.
    let server = engine.serve_shared();
    let spec = ClassSpec::new("seed-similarity", PatternSelect::Seeds);
    let cid = engine
        .register_class_serving(&spec, &server)
        .expect("spec compiles");
    let q = anchors[0];
    println!("registered {:?} live as class {cid}", "seed-similarity");
    println!("  first answer: {:?}", server.rank(cid, q, 3));

    // It rides deltas like a built-in class from here on.
    let attr = d
        .graph
        .nodes()
        .find(|&v| d.graph.node_type(v) != d.anchor_type && !d.graph.has_edge(q, v))
        .expect("some attribute q lacks");
    let mut delta = GraphDelta::for_graph(engine.graph());
    delta.add_edge(q, attr).unwrap();
    let report = engine.ingest_serving(&delta, &server).unwrap();
    println!(
        "  after one live edge: {} classes patched, answer now {:?}",
        report.per_class.len(),
        server.rank(cid, q, 3)
    );
    drop(server);

    // --- 2. the scenario suite ---------------------------------------
    // Six named workloads from one seed, replayed open-loop through the
    // async front-end while deltas and registrations land mid-traffic.
    let frontend = engine.serve_frontend();
    let mut generator = TraceGenerator::new(
        engine.graph(),
        engine.anchor_type(),
        GeneratorConfig {
            seed: 42,
            queries: 500,
            n_classes: 2, // "family" + "seed-similarity"
            // Modest storm hub: the dense Facebook schema multiplies
            // instances per hub edge (see bench_scenarios).
            hub_degree: 32,
            ..GeneratorConfig::default()
        },
    );
    let traces = generator.generate_suite();
    println!("\nreplaying {} scenarios x {} queries:", traces.len(), 500);
    let suite = run_scenarios(&mut engine, &frontend, &traces, &DriverConfig::default());
    println!("{suite}");
    println!("front-end totals: {}", frontend.shutdown());
}

//! Metagraph matching algorithm showdown (Sect. IV / Fig. 11 in miniature).
//!
//! Matches a symmetric 5-node metagraph on a LinkedIn-like graph with every
//! implemented algorithm and prints visits, instances and wall-clock —
//! showing both the correctness contract (identical instance sets) and
//! SymISO's speed advantage.
//!
//! Run with: `cargo run --release --example matching_showdown`

use semantic_proximity::datagen::{generate_linkedin, linkedin::LinkedInConfig};
use semantic_proximity::matching::{
    count_embeddings, count_instances, Matcher, PatternInfo, QuickSi, SymIso, TurboLite, Vf2,
};
use semantic_proximity::metagraph::{Decomposition, Metagraph};
use std::time::Instant;

fn main() {
    let d = generate_linkedin(&LinkedInConfig::default());
    let g = &d.graph;
    let t = |name: &str| g.types().id(name).expect("type");
    println!("Graph: {} nodes, {} edges", g.n_nodes(), g.n_edges());

    // Pattern: two users sharing an employer AND a location, one of whom
    // also attended some college ("colleagues in the same office").
    let m = Metagraph::from_edges(
        &[
            t("user"),
            t("user"),
            t("employer"),
            t("location"),
            t("college"),
        ],
        &[(0, 2), (1, 2), (0, 3), (1, 3), (0, 4), (1, 4)],
    )
    .unwrap();
    println!("Pattern: {}", m.brief());

    let decomp = Decomposition::compute(&m);
    println!(
        "Decomposition: {} blocks, reuse: {}, |Aut| = {}, residual factor = {}",
        decomp.blocks.len(),
        decomp.has_reuse(),
        decomp.aut_count,
        decomp.residual_factor
    );

    let p = PatternInfo::new(m, t("user"));
    let matchers: Vec<Box<dyn Matcher>> = vec![
        Box::new(SymIso::new()),
        Box::new(SymIso::random_order(7)),
        Box::new(TurboLite),
        Box::new(Vf2),
        Box::new(QuickSi),
    ];

    println!("\nmatcher         visits     instances   time(ms)");
    let mut reference: Option<u64> = None;
    for matcher in &matchers {
        let t0 = Instant::now();
        let visits = count_embeddings(matcher.as_ref(), g, &p);
        let ms = t0.elapsed().as_secs_f64() * 1000.0;
        let instances = count_instances(matcher.as_ref(), g, &p);
        match reference {
            None => reference = Some(instances),
            Some(r) => assert_eq!(instances, r, "matchers must agree"),
        }
        println!(
            "{:<15} {visits:>8}   {instances:>9}   {ms:>8.2}",
            matcher.name()
        );
    }
    println!("\nAll matchers agree on |I(M)| = {}.", reference.unwrap());
    println!("SymISO visits each instance once; baselines visit every embedding.");
}

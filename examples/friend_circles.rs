//! Circle-based friend suggestion (the paper's first motivating scenario).
//!
//! Generates a Facebook-like social graph, runs the full offline pipeline
//! (mine → match → index → train) for the *family* and *classmate* circles,
//! then answers queries per circle — "who were my classmates?" vs "who is
//! family?" — with the learned class-specific proximities.
//!
//! Run with: `cargo run --release --example friend_circles`

use rand::SeedableRng;
use rand_chacha::ChaCha8Rng;
use semantic_proximity::datagen::facebook::{generate_facebook, FacebookConfig, CLASSMATE, FAMILY};
use semantic_proximity::engine::{PipelineConfig, SearchEngine, TrainingStrategy};
use semantic_proximity::learning::sample_examples;

fn main() {
    let dataset = generate_facebook(&FacebookConfig::tiny(7));
    println!(
        "Generated {}: {} nodes, {} edges, {} labelled pairs",
        dataset.name,
        dataset.graph.n_nodes(),
        dataset.graph.n_edges(),
        dataset.labels.n_pairs()
    );

    let mut cfg = PipelineConfig::new(dataset.anchor_type, 5);
    cfg.strategy = TrainingStrategy::Full;
    let mut engine = SearchEngine::build(dataset.graph.clone(), cfg);
    println!(
        "Mined {} metagraphs ({} metapaths); matching took {:.2}s",
        engine.metagraphs().len(),
        engine.seed_indices().len(),
        engine.timings().matching.as_secs_f64()
    );

    // Train one model per circle from ground-truth examples.
    let anchors: Vec<_> = dataset.graph.nodes_of_type(dataset.anchor_type).to_vec();
    for (name, class) in [("family", FAMILY), ("classmate", CLASSMATE)] {
        let queries = dataset.labels.queries_of_class(class);
        let mut rng = ChaCha8Rng::seed_from_u64(1);
        let examples = sample_examples(
            &queries,
            |q| dataset.labels.positives_of(q, class),
            |q, v| dataset.labels.has(q, v, class),
            &anchors,
            300,
            &mut rng,
        );
        engine.train_class(name, &examples);
        println!("Trained circle '{name}' on {} examples", examples.len());
    }

    // Suggest friends by circle for a few queries that have both kinds of
    // ground truth.
    let g = engine.graph();
    let interesting: Vec<_> = dataset
        .labels
        .queries_of_class(FAMILY)
        .into_iter()
        .filter(|&q| !dataset.labels.positives_of(q, CLASSMATE).is_empty())
        .take(3)
        .collect();

    for q in interesting {
        println!("\n=== Suggestions for {} ===", g.label(q));
        for (name, class) in [("family", FAMILY), ("classmate", CLASSMATE)] {
            let results = engine.search(name, q, 5);
            let truth = dataset.labels.positives_of(q, class);
            let rendered: Vec<String> = results
                .iter()
                .map(|(v, s)| {
                    let mark = if truth.contains(v) { "✓" } else { " " };
                    format!("{}{} ({s:.2})", g.label(*v), mark)
                })
                .collect();
            println!("  {name:10}: {}", rendered.join(", "));
        }
    }
    println!("\n(✓ marks ground-truth members of the circle.)");
}

//! Dual-stage training demonstration (Sect. III-C, Alg. 1).
//!
//! Runs the same class through the Full, DualStage and MultiStage
//! strategies and reports how many metagraphs each had to match and how the
//! matching time compares — the paper's 83 % matching-cost reduction,
//! reproduced in miniature.
//!
//! Run with: `cargo run --release --example dual_stage_training`

use rand::SeedableRng;
use rand_chacha::ChaCha8Rng;
use semantic_proximity::datagen::facebook::{generate_facebook, FacebookConfig, FAMILY};
use semantic_proximity::engine::{PipelineConfig, SearchEngine, TrainingStrategy};
use semantic_proximity::eval::{evaluate_ranker, repeated_splits};
use semantic_proximity::learning::sample_examples;

fn main() {
    let dataset = generate_facebook(&FacebookConfig::tiny(21));
    let queries = dataset.labels.queries_of_class(FAMILY);
    let split = &repeated_splits(&queries, 0.2, 1, 9)[0];
    let anchors: Vec<_> = dataset.graph.nodes_of_type(dataset.anchor_type).to_vec();
    let mut rng = ChaCha8Rng::seed_from_u64(5);
    let examples = sample_examples(
        &split.train,
        |q| dataset.labels.positives_of(q, FAMILY),
        |q, v| dataset.labels.has(q, v, FAMILY),
        &anchors,
        400,
        &mut rng,
    );

    println!("strategy        matched/mined  matching(s)  NDCG@10  MAP@10");
    for (label, strategy) in [
        ("full", TrainingStrategy::Full),
        (
            "dual-stage",
            TrainingStrategy::DualStage { n_candidates: 8 },
        ),
        (
            "multi-stage",
            TrainingStrategy::MultiStage {
                batch: 4,
                max_batches: 3,
                min_ll_gain: 0.01,
            },
        ),
    ] {
        let mut cfg = PipelineConfig::new(dataset.anchor_type, 5);
        cfg.strategy = strategy;
        let mut engine = SearchEngine::build(dataset.graph.clone(), cfg);
        engine.train_class("family", &examples);
        let t = engine.timings();
        let (ndcg, map) = evaluate_ranker(
            &split.test,
            10,
            |q| dataset.labels.positives_of(q, FAMILY),
            |q| {
                engine
                    .search("family", q, 10)
                    .into_iter()
                    .map(|(v, _)| v)
                    .collect()
            },
        );
        println!(
            "{label:15} {:>3}/{:<9} {:>10.3}  {ndcg:.4}   {map:.4}",
            t.n_matched,
            t.n_mined,
            t.matching.as_secs_f64()
        );
    }
    println!("\nDual-stage should match far fewer metagraphs at nearly full accuracy.");
}

//! Front-end serving: micro-batching, coalescing, admission control.
//!
//! Puts the async request layer ([`Frontend`]) through its production
//! motions: a pool of open-loop callers fires zipfian (duplicate-heavy)
//! `submit` traffic while a churn thread streams graph deltas through
//! `ingest_serving` — the same concurrent regime `bench_frontend`
//! measures under CI. Each caller keeps a pipeline of in-flight
//! [`Ticket`]s and handles the two typed refusals a well-behaved client
//! must expect:
//!
//! * [`FrontendError::Overloaded`] — the bounded queue (or its
//!   tightened under-pressure bound) shed the request; back off and
//!   retry.
//! * [`FrontendError::Query`] — the request itself is malformed
//!   (unknown class id); retrying is pointless.
//!
//! At the end it prints the [`FrontendStats`] snapshot: window fill,
//! coalesce ratio (requests served per posting walk), shed counts and
//! queue-depth percentiles.
//!
//! Run with: `cargo run --release --example front_end`
//!
//! [`Frontend`]: semantic_proximity::online::Frontend
//! [`Ticket`]: semantic_proximity::online::Ticket
//! [`FrontendError::Overloaded`]: semantic_proximity::online::FrontendError
//! [`FrontendError::Query`]: semantic_proximity::online::FrontendError
//! [`FrontendStats`]: semantic_proximity::online::FrontendStats

use semantic_proximity::datagen::facebook::{generate_facebook, FacebookConfig, CLASSMATE, FAMILY};
use semantic_proximity::engine::{PipelineConfig, SearchEngine, TrainingStrategy};
use semantic_proximity::graph::{GraphDelta, NodeId};
use semantic_proximity::learning::{sample_examples, TrainConfig};
use semantic_proximity::online::{FrontendConfig, FrontendError, ServeConfig, Ticket};

use rand::SeedableRng;
use rand_chacha::ChaCha8Rng;
use std::collections::VecDeque;
use std::sync::atomic::{AtomicBool, AtomicUsize, Ordering};
use std::time::Duration;

const CALLERS: usize = 4;
const PER_CALLER: usize = 2_000;
/// In-flight tickets each caller keeps pipelined.
const OUTSTANDING: usize = 32;
/// Zipf exponent / hot-set size of the duplicate-heavy traffic.
const ZIPF_S: f64 = 1.3;
const HOT_SET: usize = 16;

/// Minimal xorshift64* — deterministic per-caller traffic.
struct XorShift(u64);

impl XorShift {
    fn next_f64(&mut self) -> f64 {
        self.0 ^= self.0 << 13;
        self.0 ^= self.0 >> 7;
        self.0 ^= self.0 << 17;
        (self.0.wrapping_mul(0x2545_F491_4F6C_DD1D) >> 11) as f64 / (1u64 << 53) as f64
    }
}

fn zipf_cdf(n: usize, s: f64) -> Vec<f64> {
    let mut cdf: Vec<f64> = Vec::with_capacity(n);
    let mut acc = 0.0;
    for r in 1..=n {
        acc += 1.0 / (r as f64).powf(s);
        cdf.push(acc);
    }
    for c in &mut cdf {
        *c /= acc;
    }
    cdf
}

fn main() {
    // Offline phase: dataset, mining, matching, indexing, two classes.
    let d = generate_facebook(&FacebookConfig::tiny(42));
    let mut cfg = PipelineConfig::new(d.anchor_type, 5);
    cfg.train = TrainConfig::fast(1);
    cfg.strategy = TrainingStrategy::Full;
    let mut engine = SearchEngine::build(d.graph.clone(), cfg);
    let anchors: Vec<NodeId> = d.graph.nodes_of_type(d.anchor_type).to_vec();
    for (name, class) in [("family", FAMILY), ("classmate", CLASSMATE)] {
        let queries = d.labels.queries_of_class(class);
        let mut rng = ChaCha8Rng::seed_from_u64(7 + class.0 as u64);
        let examples = sample_examples(
            &queries,
            |q| d.labels.positives_of(q, class),
            |q, v| d.labels.has(q, v, class),
            &anchors,
            200,
            &mut rng,
        );
        engine.train_class(name, &examples);
    }

    // Online phase: the async front-end over a shared server handle.
    // A small queue makes admission control visible in the stats below.
    let frontend = engine.serve_frontend_with(
        ServeConfig {
            workers: 2,
            shards: 4,
            cache_capacity: 0, // every duplicate win below is the coalescer's
        },
        FrontendConfig {
            workers: 2,
            queue_depth: 96,
            ..FrontendConfig::default()
        },
    );
    println!(
        "Front-end over {} nodes / {} edges: {CALLERS} zipfian callers \
         (s={ZIPF_S} over {HOT_SET} hot queries, {OUTSTANDING} in flight each) \
         + concurrent churn\n",
        engine.graph().n_nodes(),
        engine.graph().n_edges(),
    );

    // Churn events: fresh user–attribute edges added then removed again.
    let churn_pairs: Vec<(NodeId, NodeId)> = {
        let g = engine.graph();
        let attrs: Vec<NodeId> = g
            .nodes()
            .filter(|&v| g.node_type(v) != d.anchor_type && g.degree(v) > 0)
            .collect();
        let mut pairs = Vec::new();
        'outer: for &u in &anchors {
            for &a in &attrs {
                if !g.has_edge(u, a) {
                    pairs.push((u, a));
                    if pairs.len() >= 8 {
                        break 'outer;
                    }
                }
            }
        }
        pairs
    };

    let hot: Vec<NodeId> = anchors.iter().copied().take(HOT_SET).collect();
    let cdf = zipf_cdf(hot.len(), ZIPF_S);
    let stop = AtomicBool::new(false);
    let retries = AtomicUsize::new(0);

    let (_engine, ingests) = std::thread::scope(|s| {
        let fe = &frontend;

        // Churn thread: single-edge add/remove deltas through the full
        // graph → matching → index → serving chain, while callers fly.
        let churn = s.spawn(|| {
            let mut ingests = 0usize;
            'churn: loop {
                for remove in [false, true] {
                    for &(u, a) in &churn_pairs {
                        if stop.load(Ordering::Relaxed) {
                            break 'churn;
                        }
                        let mut delta = GraphDelta::for_graph(engine.graph());
                        if remove {
                            delta.remove_edge(u, a).unwrap();
                        } else {
                            delta.add_edge(u, a).unwrap();
                        }
                        engine.ingest_serving(&delta, fe.server()).unwrap();
                        ingests += 1;
                        std::thread::sleep(Duration::from_millis(1));
                    }
                }
            }
            (engine, ingests)
        });

        // Open-loop callers: submit, keep OUTSTANDING tickets in flight,
        // retry (with a yield) when admission sheds.
        let callers: Vec<_> = (0..CALLERS)
            .map(|c| {
                let (cdf, hot, retries) = (&cdf, &hot, &retries);
                s.spawn(move || {
                    let mut rng = XorShift(0x9E37_79B9 + c as u64 * 0x61C8_8647);
                    let mut inflight: VecDeque<Ticket> = VecDeque::with_capacity(OUTSTANDING);
                    for i in 0..PER_CALLER {
                        let q = hot[cdf
                            .partition_point(|&p| p < rng.next_f64())
                            .min(hot.len() - 1)];
                        let class = i % 2;
                        let ticket = loop {
                            match fe.submit(class, q, 10) {
                                Ok(t) => break t,
                                Err(FrontendError::Overloaded { .. }) => {
                                    // Shed: typed, not a panic. Back off.
                                    retries.fetch_add(1, Ordering::Relaxed);
                                    std::thread::yield_now();
                                }
                                Err(e) => panic!("unexpected refusal: {e}"),
                            }
                        };
                        inflight.push_back(ticket);
                        if inflight.len() >= OUTSTANDING {
                            inflight.pop_front().unwrap().wait().unwrap();
                        }
                    }
                    for t in inflight {
                        t.wait().unwrap();
                    }
                })
            })
            .collect();
        for c in callers {
            c.join().unwrap();
        }
        stop.store(true, Ordering::Relaxed);
        churn.join().unwrap()
    });

    // Malformed traffic gets a typed refusal, never a worker panic.
    match frontend.submit(99, hot[0], 10) {
        Err(FrontendError::Query(e)) => println!("bogus class 99 refused up front: {e}"),
        other => panic!("expected a typed Query error, got {other:?}"),
    }
    // k = 0 is answered (empty), and never poisons the result cache.
    assert!(frontend
        .submit(0, hot[0], 0)
        .unwrap()
        .wait()
        .unwrap()
        .is_empty());

    let stats = frontend.shutdown();
    println!(
        "\n--- {} requests answered, {ingests} churn ingests ---",
        stats.completed
    );
    println!(
        "windows: {} executed, {:.0}% full, coalesce ratio x{:.2} \
         ({} posting walks served {} requests)",
        stats.windows,
        100.0 * stats.window_fill,
        stats.coalesce_ratio,
        stats.distinct_executed,
        stats.windowed_requests,
    );
    println!(
        "admission: {} submitted, {} shed ({} under pressure, {} caller retries), \
         queue depth p99 {} / max {}",
        stats.submitted,
        stats.shed(),
        stats.shed_pressure,
        retries.load(Ordering::Relaxed),
        stats.queue_depth_p99,
        stats.max_queue_depth,
    );
    println!(
        "window latency: p50 {:?}, p99 {:?}",
        stats.window_latency.p50(),
        stats.window_latency.p99()
    );
    assert_eq!(stats.completed + stats.shed(), stats.submitted);
}

//! Multi-class serving under churn: every query ranks **two** semantic
//! classes in one fused pass while graph deltas keep landing.
//!
//! The paper's premise is that one graph serves many proximity classes
//! (family, classmate, …). This example shows the class dimension fused
//! out of both hot paths:
//!
//! * worker threads call [`QueryServer::rank_multi`] — one epoch
//!   snapshot, one cache round-trip and one shared scratch per query,
//!   however many classes are ranked;
//! * the ingest thread streams insert/delete deltas through
//!   `SearchEngine::ingest_serving`, which delta-matches every pattern
//!   **once** and patches both classes' postings with
//!   `QueryServer::apply_delta_fused` — each shard cloned and swapped
//!   once for the two classes together (watch `fused shard visits` come
//!   out at roughly half the per-class sum).
//!
//! At the end it prints per-class cache hit rates
//! ([`QueryServer::class_stats`]) and the epoch GC gauges
//! ([`QueryServer::epoch_stats`] — zero once the churn settles and no
//! reader pins an old snapshot).
//!
//! Run with: `cargo run --release --example multi_class_serving`
//!
//! [`QueryServer`]: semantic_proximity::online::QueryServer
//! [`QueryServer::rank_multi`]: semantic_proximity::online::QueryServer::rank_multi
//! [`QueryServer::class_stats`]: semantic_proximity::online::QueryServer::class_stats
//! [`QueryServer::epoch_stats`]: semantic_proximity::online::QueryServer::epoch_stats

use semantic_proximity::datagen::facebook::{generate_facebook, FacebookConfig, CLASSMATE, FAMILY};
use semantic_proximity::engine::{PipelineConfig, SearchEngine, TrainingStrategy};
use semantic_proximity::graph::{GraphDelta, NodeId};
use semantic_proximity::learning::{sample_examples, TrainConfig};
use semantic_proximity::online::DeltaStats;

use rand::SeedableRng;
use rand_chacha::ChaCha8Rng;
use std::sync::atomic::{AtomicBool, AtomicUsize, Ordering};
use std::time::Duration;

const WORKERS: usize = 3;
const CLASSES: [&str; 2] = ["family", "classmate"];

fn main() {
    // Offline phase: mine + match once, then train both classes over the
    // shared matched-counts cache.
    let d = generate_facebook(&FacebookConfig::tiny(42));
    let mut cfg = PipelineConfig::new(d.anchor_type, 5);
    cfg.train = TrainConfig::fast(1);
    cfg.strategy = TrainingStrategy::Full;
    let mut engine = SearchEngine::build(d.graph.clone(), cfg);
    let anchors: Vec<NodeId> = d.graph.nodes_of_type(d.anchor_type).to_vec();
    for (name, class, seed) in [("family", FAMILY, 7), ("classmate", CLASSMATE, 13)] {
        let mut rng = ChaCha8Rng::seed_from_u64(seed);
        let queries = d.labels.queries_of_class(class);
        let examples = sample_examples(
            &queries,
            |q| d.labels.positives_of(q, class),
            |q, v| d.labels.has(q, v, class),
            &anchors,
            200,
            &mut rng,
        );
        engine.train_class(name, &examples);
    }

    // Online phase: one shared server handle, both classes registered.
    let server = engine.serve_shared();
    let cids: Vec<usize> = CLASSES
        .iter()
        .map(|n| server.class_id(n).unwrap())
        .collect();
    println!(
        "Serving {CLASSES:?} over {} nodes / {} edges, {WORKERS} workers, {} shards\n",
        engine.graph().n_nodes(),
        engine.graph().n_edges(),
        server.n_shards()
    );

    // An insert-then-remove churn stream over fresh user–attribute edges.
    let g = engine.graph().clone();
    let events: Vec<(NodeId, NodeId)> = {
        let attrs: Vec<NodeId> = g
            .nodes()
            .filter(|&v| g.node_type(v) != d.anchor_type && g.degree(v) > 0)
            .collect();
        let mut pairs = Vec::new();
        'outer: for &u in &anchors {
            for &a in &attrs {
                if !g.has_edge(u, a) {
                    pairs.push((u, a));
                    if pairs.len() >= 10 {
                        break 'outer;
                    }
                }
            }
        }
        pairs
    };

    let stop = AtomicBool::new(false);
    let queries_done = AtomicUsize::new(0);

    std::thread::scope(|s| {
        // Workers: every query asks for BOTH classes in one fused walk.
        for w in 0..WORKERS {
            let server = server.clone();
            let (anchors, cids) = (&anchors, &cids);
            let (stop, queries_done) = (&stop, &queries_done);
            s.spawn(move || {
                let mut i = w;
                while !stop.load(Ordering::Relaxed) {
                    let q = anchors[i % anchors.len()];
                    let ranked = server.rank_multi(cids, q, 10);
                    assert_eq!(ranked.len(), CLASSES.len());
                    queries_done.fetch_add(1, Ordering::Relaxed);
                    i += 1;
                }
            });
        }

        // Ingest thread: stream the events (all inserted, then all
        // removed — netting back to the base graph) while workers serve.
        let mut swap_totals = DeltaStats::default();
        let mut fused_visits = 0usize;
        let mut sequential_visits = 0usize;
        for remove in [false, true] {
            let verb = if remove { "remove" } else { "insert" };
            for &(u, a) in &events {
                let mut delta = GraphDelta::for_graph(engine.graph());
                if remove {
                    delta.remove_edge(u, a).unwrap();
                } else {
                    delta.add_edge(u, a).unwrap();
                }
                let report = engine.ingest_serving(&delta, &server).unwrap();
                fused_visits += report.fused_shard_visits;
                sequential_visits += report.sequential_shard_visits();
                for &(_, stats) in &report.serving {
                    swap_totals += stats;
                }
                println!(
                    "{verb} {u}–{a}: {} new / {} doomed instances, {} fused shard \
                     visits for {} classes (sequential would take {})",
                    report.new_instances,
                    report.doomed_instances,
                    report.fused_shard_visits,
                    report.serving.len(),
                    report.sequential_shard_visits(),
                );
                std::thread::sleep(Duration::from_millis(2));
            }
        }
        stop.store(true, Ordering::Relaxed);
        println!("\n--- stream ended: {} deltas ---", 2 * events.len());
        println!("total patch work : {swap_totals}");
        println!(
            "shard visits     : {fused_visits} fused vs {sequential_visits} per-class \
             ({:.1}x saved)",
            sequential_visits as f64 / fused_visits.max(1) as f64
        );
    });

    println!(
        "workers          : {} fused two-class queries served across the stream",
        queries_done.load(Ordering::Relaxed)
    );
    for (name, &cid) in CLASSES.iter().zip(&cids) {
        let cs = server.class_stats(cid);
        println!(
            "cache[{name:>9}] : {} hits / {} misses ({:.1}% hit rate)",
            cs.hits,
            cs.misses,
            100.0 * cs.hit_rate()
        );
    }
    println!("epochs           : {}", server.epoch_stats());
}

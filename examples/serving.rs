//! Serving: from offline pipeline to a batched online `QueryServer`.
//!
//! Runs the full pipeline on the toy-scale Facebook-like dataset (mine →
//! match → index → train two classes), then serves query batches through
//! `SearchEngine::serve()`: batched parallel ranking with precomputed
//! score tables, a bounded LRU cache for hot queries, and per-batch
//! latency histograms.
//!
//! Run with: `cargo run --release --example serving`

use semantic_proximity::datagen::facebook::{generate_facebook, FacebookConfig, CLASSMATE, FAMILY};
use semantic_proximity::engine::{PipelineConfig, SearchEngine, TrainingStrategy};
use semantic_proximity::learning::{sample_examples, TrainConfig};

use rand::SeedableRng;
use rand_chacha::ChaCha8Rng;

fn main() {
    // Offline phase: dataset, mining, matching, indexing, training.
    let d = generate_facebook(&FacebookConfig::tiny(42));
    println!(
        "Dataset: {} nodes, {} edges, {} types",
        d.graph.n_nodes(),
        d.graph.n_edges(),
        d.graph.n_types()
    );
    let mut cfg = PipelineConfig::new(d.anchor_type, 5);
    cfg.train = TrainConfig::fast(1);
    cfg.strategy = TrainingStrategy::Full;
    let mut engine = SearchEngine::build(d.graph.clone(), cfg);
    println!(
        "Mined {} metagraphs ({} metapath seeds)",
        engine.metagraphs().len(),
        engine.seed_indices().len()
    );

    let anchors: Vec<_> = d.graph.nodes_of_type(d.anchor_type).to_vec();
    for (name, class) in [("family", FAMILY), ("classmate", CLASSMATE)] {
        let queries = d.labels.queries_of_class(class);
        let mut rng = ChaCha8Rng::seed_from_u64(7);
        let examples = sample_examples(
            &queries,
            |q| d.labels.positives_of(q, class),
            |q, v| d.labels.has(q, v, class),
            &anchors,
            200,
            &mut rng,
        );
        let model = engine.train_class(name, &examples);
        println!(
            "Trained `{name}` on {} examples (log-likelihood {:.2})",
            examples.len(),
            model.log_likelihood
        );
    }

    // Online phase: a QueryServer over both trained classes.
    let server = engine.serve();
    println!(
        "\nServing {:?} with {} worker(s), {} shard(s), cache capacity {}",
        server.class_names(),
        server.workers(),
        server.n_shards(),
        server.config().cache_capacity
    );

    let family = server.class_id("family").unwrap();
    let queries = d.labels.queries_of_class(FAMILY);
    let batch: Vec<_> = queries.iter().copied().cycle().take(512).collect();

    // Two identical batches: the second is served from the LRU cache.
    for round in 1..=2 {
        let results = server.rank_batch(family, &batch, 5);
        let answered = results.iter().filter(|r| !r.is_empty()).count();
        println!(
            "batch {round}: {} queries, {answered} with non-empty top-5",
            batch.len()
        );
    }
    let q = queries[0];
    let top = server.rank_batch(family, &[q], 5).pop().unwrap();
    println!(
        "\ntop-5 family candidates for {} ({}):",
        q,
        d.graph.label(q)
    );
    for (v, score) in top.iter() {
        println!("  {:<18} π = {score:.4}", d.graph.label(*v));
    }

    let stats = server.stats();
    println!(
        "\ncache: {} hits / {} misses  |  batches: {}  latency p50 {:?} p95 {:?} max {:?}",
        stats.cache_hits,
        stats.cache_misses,
        stats.latency.count,
        stats.latency.p50,
        stats.latency.p95,
        stats.latency.max
    );
}

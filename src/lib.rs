//! # semantic-proximity
//!
//! A from-scratch Rust reproduction of **"Semantic Proximity Search on Graphs
//! with Metagraph-based Learning"** (Fang, Lin, Zheng, Wu, Chang, Li — ICDE
//! 2016).
//!
//! Given a heterogeneous *typed object graph* (users, schools, employers,
//! hobbies, …), different node pairs are "close" for different *semantic*
//! reasons: classmates, family, coworkers. This crate family characterises
//! each semantic class by its tell-tale **metagraphs** — small typed pattern
//! graphs — and learns, from example rankings, a weight per metagraph that
//! turns shared metagraph instances into a class-specific proximity score
//! (MGP). Two efficiency techniques from the paper are included: **dual-stage
//! training** (match cheap metapath seeds first, then only promising
//! metagraph candidates) and **SymISO** (symmetry-based subgraph matching).
//!
//! This top-level crate simply re-exports the sub-crates under friendly
//! module names. For an end-to-end entry point see [`engine`]
//! ([`mgp_core::SearchEngine`]); for a guided tour run
//! `cargo run --example quickstart`.
//!
//! | Module | Contents |
//! |--------|----------|
//! | [`graph`] | typed object graph substrate (CSR storage, type index) |
//! | [`metagraph`] | metagraph patterns, symmetry, canonical forms, MCS |
//! | [`matching`] | QuickSI / VF2 / TurboISO-lite / SymISO subgraph matchers |
//! | [`mining`] | GRAMI-style frequent metagraph miner (MNI support) |
//! | [`index`] | metagraph vectors `m_x`, `m_xy` (Eq. 1–2) |
//! | [`learning`] | MGP proximity, supervised training, dual-stage, baselines |
//! | [`eval`] | NDCG@k / MAP@k and split management |
//! | [`datagen`] | synthetic LinkedIn-/Facebook-like datasets + toy graph |
//! | [`engine`] | offline pipeline + online query facade |
//! | [`online`] | batched `QueryServer` with live delta updates |
//! | [`persist`] | mmap snapshot sections + checksummed delta journal |
//! | [`scenario`] | runtime `ClassSpec` registration + deterministic workload suite |

pub use mgp_core as engine;
pub use mgp_datagen as datagen;
pub use mgp_eval as eval;
pub use mgp_graph as graph;
pub use mgp_index as index;
pub use mgp_learning as learning;
pub use mgp_matching as matching;
pub use mgp_metagraph as metagraph;
pub use mgp_mining as mining;
pub use mgp_online as online;
pub use mgp_persist as persist;
pub use mgp_scenario as scenario;
